#include "vm/exec_engine.h"

#include <algorithm>
#include <atomic>
#include <cassert>
#include <chrono>
#include <cstring>
#include <limits>
#include <mutex>
#include <set>
#include <stdexcept>

#include "ir/walk.h"
#include "sched/cpu_schedule.h"
#include "udf/kernels.h"
#include "sched/swarm_schedule.h"
#include "support/bitset.h"
#include "support/parallel.h"
#include "support/prof.h"
#include "support/rng.h"

namespace ugc {

namespace {

/** Scalar value with a float/int tag (main-level expression evaluation). */
struct Scalar
{
    int64_t i = 0;
    double f = 0.0;
    bool isFloat = false;

    int64_t
    asInt() const
    {
        return isFloat ? static_cast<int64_t>(f) : i;
    }
    double
    asDouble() const
    {
        return isFloat ? f : static_cast<double>(i);
    }
    bool truthy() const { return isFloat ? f != 0.0 : i != 0; }

    static Scalar ofInt(int64_t v) { return {v, 0.0, false}; }
    static Scalar ofFloat(double v) { return {0, v, true}; }
};

/** Distinct property arrays referenced by a compiled UDF. */
int
propsTouchedBy(const Chunk &chunk)
{
    std::set<int> slots;
    for (const Insn &insn : chunk.code) {
        switch (insn.op) {
          case Op::LoadProp:
          case Op::CasProp:
          case Op::ReduceProp:
            slots.insert(insn.b);
            break;
          case Op::StoreProp:
            slots.insert(insn.a);
            break;
          default:
            break;
        }
    }
    return static_cast<int>(slots.size());
}

/** Captures per-invocation property accesses for task-stream models. */
class TaskAccessRecorder : public AccessRecorder
{
  public:
    void
    record(Addr addr, bool is_write) override
    {
        accesses.push_back({addr, is_write});
    }

    std::vector<std::pair<Addr, bool>> accesses;
};

/** True if the UDF contains an atomic CAS (needs the deterministic-CAS
 *  protocol when executed by concurrent workers). */
bool
hasAtomicCas(const Chunk &chunk)
{
    for (const Insn &insn : chunk.code)
        if (insn.op == Op::CasProp && insn.atomic)
            return true;
    return false;
}

} // namespace

struct ExecEngine::Impl
{
    Impl(Program &program, const RunInputs &inputs, MachineModel &model,
         unsigned num_threads, const RunLimits &limits,
         udf::UdfTier udf_tier, bool force_atomics, ThreadPool *host_pool)
        : program(program), inputs(inputs), model(model),
          numThreads(num_threads), limits(limits), udfTier(udf_tier),
          forceAtomics(force_atomics)
    {
        if (!inputs.graph)
            throw std::invalid_argument("RunInputs.graph is null");
        graph = inputs.graph;
        taskStream = model.wantsTaskStream();
        if (taskStream)
            numThreads = 1;
        // A borrowed pool only matters for parallel rounds; its thread
        // count governs partitioning so worker indices stay in range.
        if (host_pool && numThreads > 1) {
            sharedPool = host_pool;
            numThreads = host_pool->numThreads();
        }
    }

    // --- environment ------------------------------------------------------
    Program &program;
    const RunInputs &inputs;
    MachineModel &model;
    unsigned numThreads;
    RunLimits limits;
    std::chrono::steady_clock::time_point startTime;
    const Graph *graph = nullptr;
    bool taskStream = false;
    udf::UdfTier udfTier = udf::UdfTier::Auto;
    bool forceAtomics = false;

    AddrSpace space;
    SymbolTables symbols;
    std::map<std::string, std::unique_ptr<VertexData>> props;
    std::vector<VertexData *> propsBySlot;
    std::vector<Reg> globals;
    std::map<std::string, std::unique_ptr<VertexSet>> sets;
    std::map<std::string, std::unique_ptr<PrioQueue>> queues;
    std::map<std::string, std::unique_ptr<FrontierList>> lists;
    std::map<std::string, bool> transposedEdgeSets;
    std::map<std::string, Scalar> locals;
    std::map<std::string, Chunk> chunks;

    // Compiled-tier state: catalog match results are cached per UDF name
    // (matching is per-compile work, not per-traversal work).
    std::map<std::string, std::optional<udf::KernelSpec>> kernelSpecCache;
    std::map<std::string, std::optional<udf::FilterSpec>> filterSpecCache;
    uint64_t kernelTraversals = 0; ///< traversals run on compiled kernels

    const udf::KernelSpec *
    kernelSpecFor(const std::string &name, const Chunk &chunk)
    {
        auto [it, inserted] = kernelSpecCache.try_emplace(name);
        if (inserted)
            it->second = udf::matchUdfKernel(chunk);
        return it->second ? &*it->second : nullptr;
    }

    const udf::FilterSpec *
    filterSpecFor(const std::string &name, const Chunk &chunk)
    {
        auto [it, inserted] = filterSpecCache.try_emplace(name);
        if (inserted)
            it->second = udf::matchUdfFilter(chunk);
        return it->second ? &*it->second : nullptr;
    }

    /** Resolve a matched spec's property slots (and per-kind runtime
     *  requirements) into a kernel context. False = fall back to interp. */
    bool
    resolveKernelProps(const udf::KernelSpec &spec, udf::KernelCtx &ctx,
                       PrioQueue *queue)
    {
        ctx.spec = &spec;
        int required = 1;
        if (spec.kind == udf::KernelKind::Reduce)
            required = 2;
        else if (spec.kind == udf::KernelKind::BcBackward)
            required = 4;
        for (int i = 0; i < required; ++i) {
            const int slot = spec.slots[i];
            if (slot < 0 ||
                slot >= static_cast<int>(propsBySlot.size()) ||
                !propsBySlot[static_cast<size_t>(slot)])
                return false;
            ctx.props[i] = propsBySlot[static_cast<size_t>(slot)];
        }
        if (spec.kind == udf::KernelKind::RelaxMin && !queue)
            return false;
        return true;
    }

    Cycles cycles = 0;
    int64_t round = 0;
    std::vector<IterationTrace> trace;
    bool returned = false;

    // --- cooperative stop (cancellation + mid-round deadlines) ------------
    // Armed once per run (armStop) from RunInputs.cancel and/or
    // limits.wallTimeoutMs; polled at round tops and amortized inside the
    // traversal worker loops, so a cancel or deadline trips within
    // kCancelPollEdges traversed edges even mid-round. The trip latch is
    // shared across workers: the first poll that trips publishes it, the
    // others bail at their next poll, and the coordinating thread turns it
    // into a GuardError after the round's parallelFor returns.
    const CancelToken *stopToken = nullptr;
    bool stopHasDeadline = false;
    std::chrono::steady_clock::time_point stopDeadline;
    bool stopArmed = false;
    std::atomic<uint8_t> stopTripped{0}; // 0 none, else CancelToken::Trip
    EdgeId edgesTotal = 0; ///< traversed edges merged so far (progress)

    void
    armStop()
    {
        stopToken = inputs.cancel;
        if (limits.wallTimeoutMs) {
            stopHasDeadline = true;
            stopDeadline = startTime +
                           std::chrono::milliseconds(limits.wallTimeoutMs);
        }
        stopArmed = stopToken != nullptr || stopHasDeadline;
    }

    /** One poll; latches and returns the trip. Safe from worker threads. */
    uint8_t
    pollStop()
    {
        uint8_t trip = stopTripped.load(std::memory_order_relaxed);
        if (trip)
            return trip;
        if (stopToken && stopToken->cancelled())
            trip = static_cast<uint8_t>(CancelToken::Trip::Cancelled);
        else if (stopHasDeadline &&
                 std::chrono::steady_clock::now() >= stopDeadline)
            trip = static_cast<uint8_t>(CancelToken::Trip::Deadline);
        else if (stopToken && stopToken->deadlineExpired())
            trip = static_cast<uint8_t>(CancelToken::Trip::Deadline);
        if (trip)
            stopTripped.store(trip, std::memory_order_relaxed);
        return trip;
    }

    /** Poll (coordinating thread only) and throw the structured guard
     *  error carrying round/edge progress when tripped. */
    void
    throwIfStopped()
    {
        if (!stopArmed || !pollStop())
            return;
        const auto trip =
            static_cast<CancelToken::Trip>(
                stopTripped.load(std::memory_order_relaxed));
        const int64_t elapsed =
            std::chrono::duration_cast<std::chrono::milliseconds>(
                std::chrono::steady_clock::now() - startTime)
                .count();
        RunError error;
        error.round = round;
        error.edges = static_cast<int64_t>(edgesTotal);
        if (trip == CancelToken::Trip::Cancelled) {
            error.kind = RunError::Kind::Cancelled;
            error.detail = "query cancelled after " +
                           std::to_string(elapsed) + " ms";
        } else {
            error.kind = RunError::Kind::WallTimeout;
            error.detail =
                "wall clock (" + std::to_string(elapsed) +
                " ms) exceeded the " +
                (limits.wallTimeoutMs
                     ? "timeout (" + std::to_string(limits.wallTimeoutMs) +
                           " ms)"
                     : std::string("request deadline"));
        }
        throw GuardError(std::move(error));
    }

    // --- host-parallel runtime state --------------------------------------
    /**
     * Per-worker scratch reused across traversal rounds so the hot loop
     * performs no per-vertex (or per-round) allocation: output and spawn
     * buffers, UDF stats, traversal counters, and the UDF runtime itself
     * (whose prop table is populated once). Indexed by the worker id the
     * thread pool passes to the body.
     */
    struct WorkerCtx
    {
        UdfRuntime runtime;
        TaskAccessRecorder recorder;
        UdfStats stats;
        std::vector<VertexId> outBuffer;
        std::vector<VertexId> spawnBuffer;
        std::vector<int> order; // shuffled edge order (Swarm)
        std::vector<std::pair<Addr, bool>> coarseAccesses;
        std::vector<VertexId> coarseSpawns;
        EdgeId edges = 0;
        EdgeId degSum = 0;
        EdgeId maxDeg = 0;
        VertexId dsts = 0;
        bool enqueuedFlag = false;
        int64_t stopBudget = 0; // edges until the next cooperative-stop poll

        void
        reset()
        {
            stats = UdfStats{};
            recorder.accesses.clear();
            outBuffer.clear();
            spawnBuffer.clear();
            edges = 0;
            degSum = 0;
            maxDeg = 0;
            dsts = 0;
            enqueuedFlag = false;
            stopBudget = kCancelPollEdges;
        }
    };

    ThreadPool *sharedPool = nullptr; // borrowed (serving layer); not owned
    std::unique_ptr<ThreadPool> pool; // created on first parallel round
    std::vector<WorkerCtx> workerCtxs;
    std::vector<int64_t> blockStarts; // work-block boundaries (reused)
    Bitset visitedScratch;            // dedup filter (reused)
    Bitset casRoundScratch;           // deterministic-CAS round marks
    Bitset membershipScratch;         // pull input-frontier membership
    std::mutex queueMutex; // PrioQueue is not thread-safe; serialize updates

    ThreadPool &
    hostPool()
    {
        if (sharedPool)
            return *sharedPool;
        if (!pool)
            pool = std::make_unique<ThreadPool>(numThreads);
        return *pool;
    }

    /** Reset the first @p threads worker contexts for a new round. */
    void
    prepareWorkers(unsigned threads, bool use_atomics, Bitset *cas_round)
    {
        if (workerCtxs.size() < threads)
            workerCtxs.resize(threads);
        for (unsigned w = 0; w < threads; ++w) {
            WorkerCtx &ctx = workerCtxs[w];
            ctx.reset();
            if (ctx.runtime.props.empty())
                ctx.runtime.props = propsBySlot;
            ctx.runtime.globals = &globals;
            ctx.runtime.useAtomics = use_atomics;
            ctx.runtime.recorder = taskStream ? &ctx.recorder : nullptr;
            ctx.runtime.casRound = cas_round;
        }
    }

    /** Size (or clear) a per-round bitset over the vertex universe. */
    Bitset &
    roundBitset(Bitset &bits)
    {
        const auto n = static_cast<size_t>(graph->numVertices());
        if (bits.size() != n)
            bits.resize(n);
        else
            bits.clear();
        return bits;
    }

    /**
     * Partition @p count work items into blocks of roughly equal weight
     * (the edge-aware grain of SimpleCPUSchedule): boundaries are cut
     * wherever the running weight reaches the grain, so a skewed frontier
     * yields many light blocks around its heavy vertices and the
     * work-stealing pool can rebalance them. Boundaries land in
     * blockStarts; returns the number of blocks.
     */
    int64_t
    buildBlocks(int64_t count, EdgeId total_work, int grain_hint,
                auto &&workOf)
    {
        const auto target_blocks = static_cast<EdgeId>(numThreads) * 16;
        const EdgeId grain =
            std::max<EdgeId>(static_cast<EdgeId>(std::max(grain_hint, 1)),
                             total_work / target_blocks + 1);
        blockStarts.clear();
        blockStarts.push_back(0);
        EdgeId acc = 0;
        for (int64_t i = 0; i < count; ++i) {
            acc += workOf(i);
            if (acc >= grain && i + 1 < count) {
                blockStarts.push_back(i + 1);
                acc = 0;
            }
        }
        blockStarts.push_back(count);
        return static_cast<int64_t>(blockStarts.size()) - 1;
    }

    // --- setup ------------------------------------------------------------
    void
    setup()
    {
        symbols = SymbolTables::fromProgram(program);
        propsBySlot.resize(symbols.propSlots.size());
        globals.resize(symbols.globalSlots.size());

        for (const auto &decl : program.globals) {
            switch (decl->type.kind) {
              case TypeDesc::Kind::VertexData: {
                auto data = std::make_unique<VertexData>(
                    decl->name, decl->type.elem, graph->numVertices(),
                    space);
                if (decl->init) {
                    const Scalar init = evalScalar(decl->init);
                    if (data->isFloat())
                        data->fillFloat(init.asDouble());
                    else
                        data->fillInt(init.asInt());
                } else if (decl->hasMetadata("out_degrees_of")) {
                    for (VertexId v = 0; v < graph->numVertices(); ++v)
                        data->setInt(v, graph->outDegree(v));
                }
                propsBySlot[symbols.propSlots.at(decl->name)] = data.get();
                props[decl->name] = std::move(data);
                break;
              }
              case TypeDesc::Kind::Scalar: {
                const int slot = symbols.globalSlots.at(decl->name);
                Scalar value;
                if (decl->getMetadataOr("extern", false)) {
                    const int index =
                        decl->getMetadataOr("argv_index", -1);
                    if (index >= 0 &&
                        static_cast<size_t>(index) < inputs.args.size()) {
                        value = Scalar::ofInt(inputs.args[index]);
                    } else if (decl->name == "num_vertices") {
                        value = Scalar::ofInt(graph->numVertices());
                    } else if (decl->name == "num_edges") {
                        value = Scalar::ofInt(graph->numEdges());
                    }
                } else if (decl->init) {
                    value = evalScalar(decl->init);
                }
                if (decl->type.elem == ElemType::Float64)
                    globals[slot] = regOfFloat(value.asDouble());
                else
                    globals[slot] = regOfInt(value.asInt());
                break;
              }
              case TypeDesc::Kind::EdgeSet:
                transposedEdgeSets[decl->name] =
                    decl->hasMetadata("transpose_of");
                break;
              case TypeDesc::Kind::VertexSet:
                // Program-level vertex sets are `edges.getVertices()`:
                // the full set, materialized lazily at use.
                break;
              default:
                break;
            }
        }
        if (limits.memoryBudgetBytes && space.used() > limits.memoryBudgetBytes)
            throw GuardError(
                {RunError::Kind::MemoryBudget, round, "",
                 "runtime allocations (" + std::to_string(space.used()) +
                     " bytes) exceed the memory budget (" +
                     std::to_string(limits.memoryBudgetBytes) + " bytes)"});
    }

    // --- guardrails (DESIGN.md §8) ----------------------------------------

    /** Cycle budget plus the cooperative stop (wall deadline, cancel);
     *  called once per loop round when any limit is armed. */
    void
    checkBudgets()
    {
        throwIfStopped(); // covers wallTimeoutMs and RunInputs.cancel
        if (limits.cycleBudget) {
            const Cycles simulated = model.finalCycles(cycles);
            if (simulated > limits.cycleBudget)
                throw GuardError(
                    {RunError::Kind::CycleBudget, round, "",
                     "simulated cycles (" + std::to_string(simulated) +
                         ") exceed the cycle budget (" +
                         std::to_string(limits.cycleBudget) + ")"});
        }
    }

    /**
     * Hash of the engine's complete mutable state: property arrays, global
     * and local scalars, vertex sets (order-independent over members, so
     * sparse insertion order cannot split identical sets), priority-queue
     * buckets, and frontier-list depths. Execution is deterministic in
     * this state, so a repeated hash across rounds means the loop can
     * never terminate — the basis of the oscillation watchdog.
     */
    uint64_t
    stateHash() const
    {
        uint64_t h = 0x9e3779b97f4a7c15ULL;
        auto mix = [&h](uint64_t v) {
            h ^= v + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
        };
        auto mixDouble = [&](double d) {
            uint64_t bits;
            std::memcpy(&bits, &d, sizeof(bits));
            mix(bits);
        };
        for (const auto &[name, data] : props) {
            mix(static_cast<uint64_t>(data->size()));
            if (data->isFloat())
                for (VertexId v = 0; v < data->size(); ++v)
                    mixDouble(data->getFloat(v));
            else
                for (VertexId v = 0; v < data->size(); ++v)
                    mix(static_cast<uint64_t>(data->getInt(v)));
        }
        for (const Reg &reg : globals)
            mix(static_cast<uint64_t>(reg.i)); // raw bits either way
        for (const auto &[name, value] : locals) {
            mix(value.isFloat);
            value.isFloat ? mixDouble(value.f)
                          : mix(static_cast<uint64_t>(value.i));
        }
        for (const auto &[name, set] : sets) {
            mix(static_cast<uint64_t>(set->size()));
            uint64_t members = 0;
            set->forEach([&members](VertexId v) {
                uint64_t sm = static_cast<uint64_t>(v) + 1;
                members ^= splitMix64(sm);
            });
            mix(members);
        }
        for (const auto &[name, queue] : queues)
            mix(queue->stateHash());
        for (const auto &[name, list] : lists)
            mix(list->size());
        return h;
    }

    /**
     * Per-round watchdog of one while loop. @p loop_round counts this
     * loop's completed iterations; @p hash_ring holds the last
     * oscillationWindow state hashes of this loop.
     */
    void
    guardLoopRound(int64_t loop_round, std::vector<uint64_t> &hash_ring)
    {
        if (limits.maxIterations && loop_round >= limits.maxIterations)
            throw GuardError(
                {RunError::Kind::IterationLimit, round, "",
                 "loop exceeded max_iterations (" +
                     std::to_string(limits.maxIterations) + ")"});
        checkBudgets();
        if (limits.oscillationWindow) {
            const uint64_t h = stateHash();
            for (const uint64_t seen : hash_ring)
                if (seen == h)
                    throw GuardError(
                        {RunError::Kind::Oscillation, round, "",
                         "frontier/state hash repeated within " +
                             std::to_string(limits.oscillationWindow) +
                             " rounds; the loop cannot converge"});
            hash_ring.push_back(h);
            if (hash_ring.size() >
                static_cast<size_t>(limits.oscillationWindow))
                hash_ring.erase(hash_ring.begin());
        }
    }

    const Chunk &
    chunkFor(const std::string &name)
    {
        auto it = chunks.find(name);
        if (it != chunks.end())
            return it->second;
        FunctionPtr func = program.findFunction(name);
        if (!func)
            throw std::runtime_error("engine: missing function " + name);
        return chunks.emplace(name, compileUdf(*func, symbols))
            .first->second;
    }

    bool
    globalIsFloat(const std::string &name) const
    {
        auto it = symbols.globalTypes.find(name);
        return it != symbols.globalTypes.end() &&
               it->second == ElemType::Float64;
    }

    // --- scalar expression evaluation --------------------------------------
    Scalar
    evalScalar(const ExprPtr &expr)
    {
        switch (expr->kind) {
          case ExprKind::IntConst:
            return Scalar::ofInt(
                static_cast<const IntConstExpr &>(*expr).value);
          case ExprKind::FloatConst:
            return Scalar::ofFloat(
                static_cast<const FloatConstExpr &>(*expr).value);
          case ExprKind::VarRef: {
            const auto &name = static_cast<const VarRefExpr &>(*expr).name;
            auto local = locals.find(name);
            if (local != locals.end())
                return local->second;
            auto slot = symbols.globalSlots.find(name);
            if (slot != symbols.globalSlots.end()) {
                if (globalIsFloat(name))
                    return Scalar::ofFloat(globals[slot->second].f);
                return Scalar::ofInt(globals[slot->second].i);
            }
            throw std::runtime_error("engine: unknown scalar " + name);
          }
          case ExprKind::PropRead: {
            const auto &node = static_cast<const PropReadExpr &>(*expr);
            VertexData *prop = props.at(node.prop).get();
            const auto v =
                static_cast<VertexId>(evalScalar(node.index).asInt());
            if (prop->isFloat())
                return Scalar::ofFloat(prop->getFloat(v));
            return Scalar::ofInt(prop->getInt(v));
          }
          case ExprKind::VertexSetSize: {
            const auto &name =
                static_cast<const VertexSetSizeExpr &>(*expr).set;
            return Scalar::ofInt(setByName(name)->size());
          }
          case ExprKind::Binary:
            return evalBinary(static_cast<const BinaryExpr &>(*expr));
          case ExprKind::Unary: {
            const auto &node = static_cast<const UnaryExpr &>(*expr);
            const Scalar operand = evalScalar(node.operand);
            if (node.op == UnaryOp::Not)
                return Scalar::ofInt(!operand.truthy());
            if (operand.isFloat)
                return Scalar::ofFloat(-operand.f);
            return Scalar::ofInt(-operand.i);
          }
          case ExprKind::Call:
            return evalCall(static_cast<const CallExpr &>(*expr));
          case ExprKind::CompareAndSwap:
            throw std::runtime_error(
                "engine: CompareAndSwap outside a UDF");
        }
        throw std::runtime_error("engine: unhandled expression");
    }

    Scalar
    evalBinary(const BinaryExpr &node)
    {
        const Scalar lhs = evalScalar(node.lhs);
        const Scalar rhs = evalScalar(node.rhs);
        const bool float_op = lhs.isFloat || rhs.isFloat;
        auto arith = [&](auto op) {
            if (float_op)
                return Scalar::ofFloat(op(lhs.asDouble(), rhs.asDouble()));
            return Scalar::ofInt(op(lhs.i, rhs.i));
        };
        auto compare = [&](auto op) {
            if (float_op)
                return Scalar::ofInt(op(lhs.asDouble(), rhs.asDouble()));
            return Scalar::ofInt(op(lhs.i, rhs.i));
        };
        switch (node.op) {
          case BinaryOp::Add: return arith([](auto a, auto b) { return a + b; });
          case BinaryOp::Sub: return arith([](auto a, auto b) { return a - b; });
          case BinaryOp::Mul: return arith([](auto a, auto b) { return a * b; });
          case BinaryOp::Div:
            if (float_op)
                return Scalar::ofFloat(lhs.asDouble() / rhs.asDouble());
            if (rhs.i == 0)
                throw std::runtime_error("engine: division by zero");
            return Scalar::ofInt(lhs.i / rhs.i);
          case BinaryOp::Mod:
            if (rhs.asInt() == 0)
                throw std::runtime_error("engine: modulo by zero");
            return Scalar::ofInt(lhs.asInt() % rhs.asInt());
          case BinaryOp::Lt: return compare([](auto a, auto b) { return a < b; });
          case BinaryOp::Le: return compare([](auto a, auto b) { return a <= b; });
          case BinaryOp::Gt: return compare([](auto a, auto b) { return a > b; });
          case BinaryOp::Ge: return compare([](auto a, auto b) { return a >= b; });
          case BinaryOp::Eq: return compare([](auto a, auto b) { return a == b; });
          case BinaryOp::Ne: return compare([](auto a, auto b) { return a != b; });
          case BinaryOp::And:
            return Scalar::ofInt(lhs.truthy() && rhs.truthy());
          case BinaryOp::Or:
            return Scalar::ofInt(lhs.truthy() || rhs.truthy());
        }
        throw std::runtime_error("engine: unhandled binary op");
    }

    Scalar
    evalCall(const CallExpr &call)
    {
        if (call.callee == "__pq_finished") {
            PrioQueue *queue = queueOf(call.args[0]);
            return Scalar::ofInt(queue->finished());
        }
        if (call.callee == "__hybrid_cond") {
            const auto &name =
                static_cast<const VarRefExpr &>(*call.args[0]).name;
            const double threshold = evalScalar(call.args[1]).asDouble();
            const auto criteria = static_cast<HybridCriteria>(
                evalScalar(call.args[2]).asInt());
            const VertexSet *frontier = setByName(name);
            if (criteria == HybridCriteria::InputSetSize) {
                return Scalar::ofInt(
                    frontier->size() <
                    threshold * graph->numVertices());
            }
            EdgeId degree_sum = 0;
            frontier->forEach(
                [&](VertexId v) { degree_sum += graph->outDegree(v); });
            return Scalar::ofInt(degree_sum <
                                 threshold * graph->numEdges());
        }
        throw std::runtime_error("engine: unknown intrinsic " +
                                 call.callee);
    }

    PrioQueue *
    queueOf(const ExprPtr &expr)
    {
        const auto &name = static_cast<const VarRefExpr &>(*expr).name;
        auto it = queues.find(name);
        if (it == queues.end())
            throw std::runtime_error("engine: unknown queue " + name);
        return it->second.get();
    }

    /** Resolve a vertex set; program-level "all vertices" sets and unknown
     *  names used as full sets materialize lazily. */
    VertexSet *
    setByName(const std::string &name)
    {
        auto it = sets.find(name);
        if (it != sets.end() && it->second)
            return it->second.get();
        // Program-level vertexset globals are edges.getVertices().
        const VarDeclStmt *global = program.findGlobal(name);
        if (global && global->type.kind == TypeDesc::Kind::VertexSet) {
            auto all = std::make_unique<VertexSet>(
                VertexSet::allOf(graph->numVertices()));
            VertexSet *raw = all.get();
            sets[name] = std::move(all);
            return raw;
        }
        throw std::runtime_error("engine: unknown vertex set " + name);
    }

    // --- statement execution ----------------------------------------------
    void
    execBody(const std::vector<StmtPtr> &body)
    {
        for (const StmtPtr &stmt : body) {
            if (returned)
                return;
            execStmt(stmt);
        }
    }

    void
    execStmt(const StmtPtr &stmt)
    {
        switch (stmt->kind) {
          case StmtKind::VarDecl:
            execVarDecl(static_cast<const VarDeclStmt &>(*stmt));
            break;
          case StmtKind::Assign:
            execAssign(static_cast<const AssignStmt &>(*stmt));
            break;
          case StmtKind::PropWrite: {
            const auto &node = static_cast<const PropWriteStmt &>(*stmt);
            VertexData *prop = props.at(node.prop).get();
            const auto v =
                static_cast<VertexId>(evalScalar(node.index).asInt());
            const Scalar value = evalScalar(node.value);
            if (prop->isFloat())
                prop->setFloat(v, value.asDouble());
            else
                prop->setInt(v, value.asInt());
            break;
          }
          case StmtKind::If: {
            const auto &node = static_cast<const IfStmt &>(*stmt);
            if (evalScalar(node.cond).truthy())
                execBody(node.thenBody);
            else
                execBody(node.elseBody);
            break;
          }
          case StmtKind::While: {
            const auto &node = static_cast<const WhileStmt &>(*stmt);
            // Bucket fusion (CPU GraphVM, ordered algorithms): rounds that
            // stay in the same priority bucket skip the global sync.
            std::string fused_queue;
            walkStmts(node.body,
                      [&](const StmtPtr &inner, const std::string &) {
                          if (inner->kind != StmtKind::EdgeSetIterator)
                              return;
                          const auto &iter =
                              static_cast<const EdgeSetIteratorStmt &>(
                                  *inner);
                          if (iter.getMetadataOr("bucket_fusion", false))
                              fused_queue = iter.queue;
                      });
            int64_t last_bucket = std::numeric_limits<int64_t>::min();
            const bool guarded = limits.any() || stopArmed;
            int64_t loop_round = 0;
            std::vector<uint64_t> hash_ring;
            while (!returned && evalScalar(node.cond).truthy()) {
                // Guard at the loop top, after the condition: it fires only
                // when another iteration is actually coming, so a loop that
                // converges in exactly max_iterations rounds is untouched.
                if (guarded)
                    guardLoopRound(loop_round++, hash_ring);
                prof::ScopeTimer round_scope("round");
                bool fused_round = false;
                if (!fused_queue.empty() && queues.count(fused_queue)) {
                    const int64_t bucket =
                        queues.at(fused_queue)->currentBucket();
                    fused_round = bucket == last_bucket;
                    last_bucket = bucket;
                }
                if (!fused_round) {
                    const Cycles charged = model.onLoopIteration(node);
                    cycles += charged;
                    prof::addCycles(charged);
                }
                ++round;
                execBody(node.body);
            }
            break;
          }
          case StmtKind::ForRange: {
            const auto &node = static_cast<const ForRangeStmt &>(*stmt);
            const int64_t lo = evalScalar(node.lo).asInt();
            const int64_t hi = evalScalar(node.hi).asInt();
            // Statically bounded: no iteration/oscillation watchdog, but
            // cycle/wall budgets still apply.
            const bool guarded = limits.cycleBudget != 0 || stopArmed;
            for (int64_t i = lo; i < hi && !returned; ++i) {
                prof::ScopeTimer round_scope("round");
                locals[node.var] = Scalar::ofInt(i);
                const Cycles charged = model.onLoopIteration(node);
                cycles += charged;
                prof::addCycles(charged);
                ++round;
                execBody(node.body);
                if (guarded)
                    checkBudgets();
            }
            break;
          }
          case StmtKind::ExprStmt:
            evalScalar(static_cast<const ExprStmt &>(*stmt).expr);
            break;
          case StmtKind::EdgeSetIterator:
            execEdgeTraversal(
                static_cast<const EdgeSetIteratorStmt &>(*stmt));
            break;
          case StmtKind::VertexSetIterator:
            execVertexOps(
                static_cast<const VertexSetIteratorStmt &>(*stmt));
            break;
          case StmtKind::EnqueueVertex: {
            const auto &node = static_cast<const EnqueueVertexStmt &>(*stmt);
            const auto v =
                static_cast<VertexId>(evalScalar(node.vertex).asInt());
            setByName(node.output)->add(v);
            break;
          }
          case StmtKind::UpdatePriority: {
            const auto &node =
                static_cast<const UpdatePriorityStmt &>(*stmt);
            PrioQueue *queue = queues.at(node.queue).get();
            queue->updatePriorityMin(
                static_cast<VertexId>(evalScalar(node.vertex).asInt()),
                evalScalar(node.value).asInt());
            break;
          }
          case StmtKind::ListAppend: {
            const auto &node = static_cast<const ListAppendStmt &>(*stmt);
            if (!lists.count(node.list))
                lists[node.list] = std::make_unique<FrontierList>();
            lists.at(node.list)->append(*setByName(node.set));
            break;
          }
          case StmtKind::ListRetrieve: {
            const auto &node = static_cast<const ListRetrieveStmt &>(*stmt);
            sets[node.set] = std::make_unique<VertexSet>(
                lists.at(node.list)->retrieve());
            break;
          }
          case StmtKind::VertexSetDedup:
            setByName(static_cast<const VertexSetDedupStmt &>(*stmt).set)
                ->dedup();
            break;
          case StmtKind::Delete: {
            const auto &node = static_cast<const DeleteStmt &>(*stmt);
            sets.erase(node.name);
            break;
          }
          case StmtKind::Return:
            returned = true;
            break;
          default:
            throw std::runtime_error("engine: unexpected statement kind");
        }
    }

    void
    execVarDecl(const VarDeclStmt &decl)
    {
        switch (decl.type.kind) {
          case TypeDesc::Kind::Scalar: {
            Scalar value;
            if (decl.init)
                value = evalScalar(decl.init);
            if (decl.type.elem == ElemType::Float64 && !value.isFloat)
                value = Scalar::ofFloat(value.asDouble());
            locals[decl.name] = value;
            break;
          }
          case TypeDesc::Kind::VertexSet: {
            if (decl.init && decl.init->kind == ExprKind::Call) {
                const auto &call = static_cast<const CallExpr &>(*decl.init);
                if (call.callee == "__pq_dequeue") {
                    sets[decl.name] = std::make_unique<VertexSet>(
                        queueOf(call.args[0])->dequeueReadySet());
                    return;
                }
            }
            auto set = std::make_unique<VertexSet>(graph->numVertices());
            if (decl.init) {
                // GraphIt: `new vertexset{Vertex}(k)` holds vertices 0..k-1.
                const auto k = static_cast<VertexId>(
                    evalScalar(decl.init).asInt());
                for (VertexId v = 0; v < std::min(k, graph->numVertices());
                     ++v)
                    set->add(v);
            }
            sets[decl.name] = std::move(set);
            break;
          }
          case TypeDesc::Kind::PrioQueue:
            execNewQueue(decl);
            break;
          case TypeDesc::Kind::FrontierList:
            lists[decl.name] = std::make_unique<FrontierList>();
            break;
          default:
            throw std::runtime_error("engine: cannot declare " + decl.name);
        }
    }

    void
    execNewQueue(const VarDeclStmt &decl)
    {
        if (!decl.init || decl.init->kind != ExprKind::Call)
            throw std::runtime_error("engine: priority queue without init");
        const auto &call = static_cast<const CallExpr &>(*decl.init);
        const auto &prop_name =
            static_cast<const VarRefExpr &>(*call.args[0]).name;
        VertexData *priorities = props.at(prop_name).get();

        // The schedule's delta (resolved by ordered lowering onto the
        // traversal statement) overrides the program's default.
        int64_t delta = evalScalar(call.args[1]).asInt();
        walkStmts(program.mainFunction()->body,
                  [&](const StmtPtr &stmt, const std::string &) {
                      if (stmt->kind != StmtKind::EdgeSetIterator)
                          return;
                      const auto &node =
                          static_cast<const EdgeSetIteratorStmt &>(*stmt);
                      if (node.queue == decl.name &&
                          node.hasMetadata("delta"))
                          delta = node.getMetadata<int64_t>("delta");
                  });
        if (delta <= 0)
            delta = 1;

        auto queue = std::make_unique<PrioQueue>(priorities, delta);
        const auto start =
            static_cast<VertexId>(evalScalar(call.args[2]).asInt());
        priorities->setInt(start, 0);
        queue->enqueue(start);
        queues[decl.name] = std::move(queue);
    }

    void
    execAssign(const AssignStmt &node)
    {
        // Scalar targets first.
        auto local = locals.find(node.name);
        const bool is_global = symbols.globalSlots.count(node.name) != 0;
        if (local != locals.end() || is_global) {
            // Vertex-set moves also look like Assign; check the source.
            if (node.value->kind == ExprKind::VarRef) {
                const auto &src =
                    static_cast<const VarRefExpr &>(*node.value).name;
                if (sets.count(src)) {
                    moveSet(node.name, src);
                    return;
                }
            }
            const Scalar value = evalScalar(node.value);
            if (local != locals.end()) {
                local->second = value;
            } else {
                const int slot = symbols.globalSlots.at(node.name);
                if (globalIsFloat(node.name))
                    globals[slot] = regOfFloat(value.asDouble());
                else
                    globals[slot] = regOfInt(value.asInt());
            }
            return;
        }
        // Set-to-set assignment (frontier = output) or dequeue.
        if (node.value->kind == ExprKind::VarRef) {
            moveSet(node.name,
                    static_cast<const VarRefExpr &>(*node.value).name);
            return;
        }
        if (node.value->kind == ExprKind::Call) {
            const auto &call = static_cast<const CallExpr &>(*node.value);
            if (call.callee == "__pq_dequeue") {
                sets[node.name] = std::make_unique<VertexSet>(
                    queueOf(call.args[0])->dequeueReadySet());
                return;
            }
        }
        // Fallback: new scalar local.
        locals[node.name] = evalScalar(node.value);
    }

    void
    moveSet(const std::string &dst, const std::string &src)
    {
        auto it = sets.find(src);
        if (it == sets.end())
            throw std::runtime_error("engine: unknown set " + src);
        sets[dst] = std::move(it->second);
        sets.erase(it);
    }

    // --- traversals ----------------------------------------------------------
    std::shared_ptr<SimpleSchedule>
    scheduleOf(const Stmt &stmt)
    {
        auto schedule =
            stmt.getMetadataOr<SchedulePtr>("schedule", nullptr);
        auto simple = std::dynamic_pointer_cast<SimpleSchedule>(schedule);
        if (simple)
            return simple;
        return std::make_shared<SimpleSchedule>();
    }

    /** Record one TraversalEvent: what the engine decided (direction,
     *  frontier) plus the machine model's counter delta and UDF work. */
    void
    emitTraversalEvent(const std::string &label, const TraversalInfo &info,
                       Cycles charged, const CounterSet &counters_before)
    {
        prof::TraversalEvent event;
        event.round = round;
        event.label = label;
        event.direction = info.direction;
        event.inputFormat = info.inputFormat;
        event.frontierSize = info.frontierSize;
        event.outputSize = info.outputSize;
        event.edgesTraversed = info.edgesTraversed;
        event.cycles = charged;
        event.detail =
            prof::counterDelta(model.counters(), counters_before);
        // Each udf.* figure lands twice on purpose: in the event detail
        // for per-traversal attribution, and on the enclosing statement
        // scope so Profile::totalCounter (and the --profile totals) see
        // whole-run UDF work.
        const auto fold = [&event](const char *name, uint64_t value) {
            if (!value)
                return;
            event.detail.add(name, static_cast<double>(value));
            prof::counter(name, static_cast<double>(value));
        };
        fold("udf.instructions", info.udf.instructions);
        fold("udf.prop_reads", info.udf.propReads);
        fold("udf.prop_writes", info.udf.propWrites);
        fold("udf.atomics", info.udf.atomics);
        fold("udf.enqueues", info.udf.enqueues);
        fold("udf.updates", info.udf.updates);
        prof::traversalEvent(std::move(event));
    }

    void
    execEdgeTraversal(const EdgeSetIteratorStmt &stmt)
    {
        const bool profiling = prof::active();
        prof::ScopeTimer scope(profiling ? "apply:" + stmt.label
                                         : std::string());
        CounterSet counters_before;
        if (profiling)
            counters_before = model.counters();

        TraversalInfo info;
        info.kind = TraversalInfo::Kind::EdgeTraversal;
        info.stmt = &stmt;
        info.schedule = scheduleOf(stmt);
        info.direction = stmt.getMetadataOr("direction", Direction::Push);
        info.weighted = stmt.getMetadataOr("needs_weight", false);

        const bool transposed = transposedEdgeSets.count(stmt.graph)
                                    ? transposedEdgeSets.at(stmt.graph)
                                    : false;

        // Input frontier.
        VertexSet *input = nullptr;
        info.isAllVertices = stmt.inputSet.empty();
        if (!info.isAllVertices) {
            input = setByName(stmt.inputSet);
            info.frontierSize = input->size();
            info.inputFormat = input->format();
        } else {
            info.frontierSize = graph->numVertices();
        }

        // Output frontier.
        std::unique_ptr<VertexSet> output;
        const bool wants_output = !stmt.outputSet.empty();
        if (wants_output) {
            output = std::make_unique<VertexSet>(graph->numVertices(),
                                                 VertexSetFormat::Sparse);
            info.producesOutput = true;
        }
        const bool dedup = stmt.getMetadataOr("apply_deduplication", false);

        // UDF and filters.
        const std::string variant = stmt.getMetadataOr<std::string>(
            "apply_variant", stmt.applyFunc);
        const Chunk &apply = chunkFor(variant);
        info.propsTouched = propsTouchedBy(apply);
        const Chunk *dst_filter = nullptr;
        if (!stmt.dstFilter.empty() &&
            !stmt.getMetadataOr("filter_fused", false))
            dst_filter = &chunkFor(stmt.dstFilter);
        const Chunk *src_filter = nullptr;
        if (!stmt.srcFilter.empty())
            src_filter = &chunkFor(stmt.srcFilter);

        PrioQueue *queue =
            stmt.queue.empty() ? nullptr : queues.at(stmt.queue).get();

        // Compiled UDF tier: consult the registry once per traversal. Auto
        // trusts the udf-kernel-select pass (udf_kernel metadata); Compiled
        // re-matches unconditionally so hand-lowered programs still work.
        // Source filters have no compiled form, and task-stream models need
        // the interpreter's per-access recording.
        const udf::KernelSpec *kernel_spec = nullptr;
        if (udfTier != udf::UdfTier::Interp &&
            model.supportsCompiledUdfs() && !taskStream && !src_filter &&
            (udfTier == udf::UdfTier::Compiled ||
             stmt.hasMetadata("udf_kernel")))
            kernel_spec = kernelSpecFor(variant, apply);

        if (info.direction == Direction::Push) {
            runPush(stmt, info, input, output.get(), dedup, apply,
                    dst_filter, src_filter, queue, transposed, kernel_spec);
        } else {
            runPull(stmt, info, input, output.get(), dedup, apply,
                    dst_filter, src_filter, queue, transposed, kernel_spec);
        }

        if (wants_output) {
            info.outputSize = output->size();
            sets[stmt.outputSet] = std::move(output);
        }

        const Cycles charged = model.onTraversal(info);
        cycles += charged;
        prof::addCycles(charged);
        trace.push_back({stmt.label, info.direction, info.frontierSize,
                         info.edgesTraversed, charged});
        if (profiling)
            emitTraversalEvent(stmt.label, info, charged, counters_before);
    }

    /** Iterate the input frontier as a sorted vector of vertices. */
    std::vector<VertexId>
    frontierVertices(const VertexSet *input)
    {
        if (!input)
            return {};
        return input->toSorted();
    }

    void
    runPush(const EdgeSetIteratorStmt &stmt, TraversalInfo &info,
            VertexSet *input, VertexSet *output, bool dedup,
            const Chunk &apply, const Chunk *dst_filter,
            const Chunk *src_filter, PrioQueue *queue, bool transposed,
            const udf::KernelSpec *kernel_spec)
    {
        auto swarm_sched =
            scheduleAs<SimpleSwarmSchedule>(info.schedule);
        const bool fine_tasks =
            taskStream && swarm_sched &&
            swarm_sched->granularity() == TaskGranularity::FineGrained;
        const bool hints = taskStream && swarm_sched &&
                           swarm_sched->spatialHints();
        // Spatial-hint source: the atomics pass exports the traversal's
        // static write set as effects_writes metadata; fine-grained tasks
        // hint on the destination's slot in the first written property.
        // Falls back to the first dynamically recorded access when the
        // static set names no vertex property (e.g. only a priority
        // queue is updated).
        VertexData *hint_prop = nullptr;
        if (hints) {
            const auto hint_writes =
                stmt.getMetadataOr<std::vector<std::string>>(
                    "effects_writes", {});
            for (const std::string &prop : hint_writes) {
                auto it = props.find(prop);
                if (it != props.end()) {
                    hint_prop = it->second.get();
                    break;
                }
            }
        }
        const bool shuffle =
            swarm_sched && swarm_sched->shuffleEdges();
        const bool barrier_frontiers =
            taskStream &&
            (!swarm_sched ||
             swarm_sched->frontiers() == SwarmFrontiers::Queues);

        std::vector<VertexId> frontier;
        if (!info.isAllVertices)
            frontier = frontierVertices(input);

        auto degree = [&](VertexId v) {
            return transposed ? graph->inDegree(v) : graph->outDegree(v);
        };
        auto neighbors = [&](VertexId v) {
            return transposed ? graph->inNeighbors(v)
                              : graph->outNeighbors(v);
        };
        auto weights = [&](VertexId v) {
            return transposed ? graph->inWeights(v) : graph->outWeights(v);
        };

        const VertexId frontier_count =
            info.isAllVertices ? graph->numVertices()
                               : static_cast<VertexId>(frontier.size());

        // Total traversal work (edges + per-vertex constant) gates the
        // parallel path and sets the edge-balanced block grain.
        EdgeId total_work = frontier_count;
        if (info.isAllVertices) {
            total_work += graph->numEdges();
        } else {
            for (VertexId u : frontier)
                total_work += degree(u);
        }

        const unsigned threads =
            (numThreads > 1 && (frontier_count > 256 || total_work > 4096))
                ? numThreads
                : 1;

        // Atomics elision: a serial round owns every destination, so
        // is_atomic sites may run their plain path. udf.atomics counters
        // are charged statically (per is_atomic site) either way, and
        // forceAtomics re-enables the hardware atomics for validation.
        const bool use_atomics = forceAtomics || threads > 1;

        Bitset *visited = nullptr;
        if (dedup && output)
            visited = &roundBitset(visitedScratch);

        // Deterministic CAS resolution, so concurrent workers produce the
        // same property values (and the same swap counts) as a serial run.
        Bitset *cas_round = nullptr;
        if (threads > 1 && hasAtomicCas(apply))
            cas_round = &roundBitset(casRoundScratch);

        // Compiled-tier kernel selection: resolve the matched spec against
        // this traversal's runtime shape (schedule axes). Any mismatch
        // silently falls back to the interpreter. Shuffled edge order is an
        // interpreter-only Swarm fidelity knob.
        udf::KernelCtx kbase{};
        udf::PushKernelFn kernel = nullptr;
        if (kernel_spec && !shuffle) {
            bool ok = resolveKernelProps(*kernel_spec, kbase, queue);
            if (ok && dst_filter) {
                const udf::FilterSpec *fspec =
                    filterSpecFor(stmt.dstFilter, *dst_filter);
                VertexData *fprop =
                    (fspec && fspec->slot >= 0 &&
                     fspec->slot < static_cast<int>(propsBySlot.size()))
                        ? propsBySlot[static_cast<size_t>(fspec->slot)]
                        : nullptr;
                if (fprop && !fprop->isFloat()) {
                    kbase.filter = fspec;
                    kbase.filterProp = fprop;
                } else {
                    ok = false;
                }
            }
            if (ok) {
                udf::KernelQuery q;
                q.useAtomics = use_atomics;
                q.detCas = cas_round != nullptr;
                q.weighted = info.weighted;
                q.locked = threads > 1;
                q.isFloat = kbase.props[0]->isFloat();
                q.sourceIsFloat =
                    kbase.props[1] && kbase.props[1]->isFloat();
                q.hasFilter = kbase.filter != nullptr;
                kernel = udf::selectPushKernel(*kernel_spec, q);
            }
            if (kernel) {
                kbase.visited = visited;
                kbase.queue = queue;
                kbase.queueMutex = threads > 1 ? &queueMutex : nullptr;
                kbase.casRound = cas_round;
                ++kernelTraversals;
            }
        }

        // Work blocks. Edge-aware / edge-based schedules weight vertices by
        // degree; vertex-based ones get uniform blocks. Serial runs take
        // the whole range as one block.
        const Parallelization par = info.schedule
                                        ? info.schedule->getParallelization()
                                        : Parallelization::VertexBased;
        auto cpu_sched = scheduleAs<SimpleCPUSchedule>(info.schedule);
        const int grain_hint = cpu_sched ? cpu_sched->grainSize() : 256;
        int64_t num_blocks = 1;
        if (threads > 1) {
            if (par == Parallelization::VertexBased) {
                num_blocks = buildBlocks(frontier_count, frontier_count,
                                         grain_hint,
                                         [](int64_t) { return EdgeId{1}; });
            } else {
                num_blocks = buildBlocks(
                    frontier_count, total_work, grain_hint, [&](int64_t i) {
                        const VertexId u =
                            info.isAllVertices
                                ? static_cast<VertexId>(i)
                                : frontier[static_cast<size_t>(i)];
                        return degree(u) + 1;
                    });
            }
        } else {
            blockStarts.clear();
            blockStarts.push_back(0);
            blockStarts.push_back(frontier_count);
        }

        prepareWorkers(threads, use_atomics, cas_round);

        auto worker_body = [&](unsigned w, int64_t blo, int64_t bhi) {
            WorkerCtx &ctx = workerCtxs[w];
            UdfRuntime &runtime = ctx.runtime;
            UdfStats &stats = ctx.stats;

            auto enqueue_sink = [&](VertexId x) {
                if (taskStream)
                    ctx.spawnBuffer.push_back(x);
                if (!output)
                    return;
                if (!visited || visited->setAtomic(static_cast<size_t>(x)))
                    ctx.outBuffer.push_back(x);
            };
            auto update_min_sink = [&](VertexId x, int64_t priority) {
                bool changed = false;
                if (queue) {
                    if (threads > 1) {
                        std::lock_guard<std::mutex> lock(queueMutex);
                        changed = queue->updatePriorityMin(x, priority);
                    } else {
                        changed = queue->updatePriorityMin(x, priority);
                    }
                }
                if (changed && taskStream)
                    ctx.spawnBuffer.push_back(x);
                return changed;
            };
            runtime.bindEnqueue(enqueue_sink);
            runtime.bindUpdatePriorityMin(update_min_sink);

            udf::KernelCtx kctx = kbase;
            kctx.stats = &stats;
            kctx.outBuffer = output ? &ctx.outBuffer : nullptr;

            // Argument registers marshalled once per source (args[0]) and
            // once per worker (the unweighted weight), not per edge.
            Reg args[3];
            args[2] = regOfInt(1);
            const unsigned nargs = info.weighted ? 3u : 2u;

            Rng shuffle_rng(0x5ca1ab1eULL);
            const bool stop_armed = stopArmed;

            for (int64_t b = blo; b < bhi; ++b) {
              // Bail fast once any worker latched the trip; the coordinating
              // thread turns it into a GuardError after the parallelFor.
              if (stop_armed &&
                  stopTripped.load(std::memory_order_relaxed))
                  return;
              for (int64_t i = blockStarts[static_cast<size_t>(b)],
                           hi = blockStarts[static_cast<size_t>(b) + 1];
                   i < hi; ++i) {
                const VertexId u = info.isAllVertices
                                       ? static_cast<VertexId>(i)
                                       : frontier[static_cast<size_t>(i)];
                args[0] = regOfInt(u);
                if (src_filter) {
                    if (!runUdfBool(*src_filter, {&args[0], 1}, runtime,
                                    stats))
                        continue;
                }
                const EdgeId deg = degree(u);
                // Amortized cooperative-stop poll: at most one clock read
                // per kCancelPollEdges traversed edges per worker; a single
                // predictable branch when disarmed.
                if (stop_armed &&
                    (ctx.stopBudget -= static_cast<int64_t>(deg) + 1) <= 0) {
                    ctx.stopBudget = kCancelPollEdges;
                    if (pollStop())
                        return;
                }
                ctx.degSum += deg;
                ctx.maxDeg = std::max(ctx.maxDeg, deg);
                const auto nbrs = neighbors(u);
                const auto wts =
                    info.weighted ? weights(u) : std::span<const Weight>{};

                if (kernel) {
                    // Compiled tier: filter + apply inlined over the whole
                    // adjacency list, no per-edge dispatch.
                    kernel(kctx, u, nbrs.data(),
                           info.weighted ? wts.data() : nullptr,
                           nbrs.size());
                    ctx.edges += deg;
                    continue;
                }

                const bool shuffled = shuffle && nbrs.size() > 2;
                if (shuffled) {
                    ctx.order.resize(nbrs.size());
                    for (size_t k = 0; k < nbrs.size(); ++k)
                        ctx.order[k] = static_cast<int>(k);
                    for (size_t k = nbrs.size() - 1; k > 0; --k) {
                        std::swap(ctx.order[k],
                                  ctx.order[shuffle_rng.nextBounded(k + 1)]);
                    }
                }

                if (!taskStream && !shuffled) {
                    // Hot interpreter path: the filter null check is
                    // hoisted out of the edge loop and there is no
                    // per-edge recorder/spawn bookkeeping (neither is
                    // bound outside task-stream models).
                    ctx.edges += deg;
                    if (dst_filter) {
                        for (size_t k = 0; k < nbrs.size(); ++k) {
                            args[1] = regOfInt(nbrs[k]);
                            if (!runUdfBool(*dst_filter, {&args[1], 1},
                                            runtime, stats))
                                continue;
                            if (info.weighted)
                                args[2] = regOfInt(wts[k]);
                            runUdf(apply, {args, nargs}, runtime, stats);
                        }
                    } else {
                        for (size_t k = 0; k < nbrs.size(); ++k) {
                            args[1] = regOfInt(nbrs[k]);
                            if (info.weighted)
                                args[2] = regOfInt(wts[k]);
                            runUdf(apply, {args, nargs}, runtime, stats);
                        }
                    }
                    continue;
                }

                uint64_t coarse_instr = 0;
                ctx.coarseAccesses.clear();
                ctx.coarseSpawns.clear();

                for (size_t oi = 0; oi < nbrs.size(); ++oi) {
                    const size_t k =
                        shuffled ? static_cast<size_t>(ctx.order[oi]) : oi;
                    const VertexId v = nbrs[k];
                    ++ctx.edges;
                    if (dst_filter) {
                        Reg arg = regOfInt(v);
                        if (!runUdfBool(*dst_filter, {&arg, 1}, runtime,
                                        stats))
                            continue;
                    }
                    args[1] = regOfInt(v);
                    args[2] = regOfInt(info.weighted ? wts[k] : 1);
                    const uint64_t instr_before = stats.instructions;
                    ctx.recorder.accesses.clear();
                    ctx.spawnBuffer.clear();
                    runUdf(apply, {args, info.weighted ? 3u : 2u}, runtime,
                           stats);
                    if (taskStream) {
                        const uint64_t instr =
                            stats.instructions - instr_before;
                        if (fine_tasks) {
                            TaskRecord task;
                            task.timestamp = round;
                            // The task is gated by its source's spawn.
                            task.vertex = u;
                            task.instructions = instr;
                            task.accesses = ctx.recorder.accesses;
                            task.spawns = ctx.spawnBuffer;
                            if (hints) {
                                if (hint_prop)
                                    task.hint = hint_prop->addrOf(v);
                                else if (!ctx.recorder.accesses.empty())
                                    task.hint =
                                        ctx.recorder.accesses.front().first;
                            }
                            model.onTask(std::move(task));
                        } else {
                            coarse_instr += instr;
                            ctx.coarseAccesses.insert(
                                ctx.coarseAccesses.end(),
                                ctx.recorder.accesses.begin(),
                                ctx.recorder.accesses.end());
                            ctx.coarseSpawns.insert(ctx.coarseSpawns.end(),
                                                    ctx.spawnBuffer.begin(),
                                                    ctx.spawnBuffer.end());
                        }
                    }
                }
                if (taskStream && !fine_tasks) {
                    TaskRecord task;
                    task.timestamp = round;
                    task.vertex = u;
                    task.instructions = coarse_instr + 10;
                    task.accesses = std::move(ctx.coarseAccesses);
                    task.spawns = std::move(ctx.coarseSpawns);
                    model.onTask(std::move(task));
                    ctx.coarseAccesses.clear();
                    ctx.coarseSpawns.clear();
                }
              }
            }
        };

        if (threads == 1)
            worker_body(0, 0, 1);
        else
            hostPool().parallelFor(0, num_blocks, /*grain=*/1, worker_body);

        // Merge in worker order. Which worker ran which block is
        // schedule-dependent, but every merged quantity is a commutative
        // reduction (sums, max, set insertions of deterministic content),
        // so the result is identical across runs and thread counts.
        for (unsigned t = 0; t < threads; ++t) {
            const WorkerCtx &ctx = workerCtxs[t];
            info.udf.merge(ctx.stats);
            info.edgesTraversed += ctx.edges;
            info.frontierDegreeSum += ctx.degSum;
            info.frontierDegreeMax =
                std::max<EdgeId>(info.frontierDegreeMax, ctx.maxDeg);
            if (output)
                output->addBulk(ctx.outBuffer);
            edgesTotal += ctx.edges;
        }
        if (stopArmed)
            throwIfStopped(); // surface a mid-round trip with full progress
        if (barrier_frontiers)
            model.onRoundBarrier();
    }

    void
    runPull(const EdgeSetIteratorStmt &stmt, TraversalInfo &info,
            VertexSet *input, VertexSet *output, bool dedup,
            const Chunk &apply, const Chunk *dst_filter,
            const Chunk *src_filter, PrioQueue *queue, bool transposed,
            const udf::KernelSpec *kernel_spec)
    {
        // Pull swaps roles: iterate destinations, scan in-neighbors.
        auto neighbors = [&](VertexId v) {
            return transposed ? graph->outNeighbors(v)
                              : graph->inNeighbors(v);
        };
        auto weights = [&](VertexId v) {
            return transposed ? graph->outWeights(v) : graph->inWeights(v);
        };

        // Membership structure for the input frontier.
        Bitset *membership = nullptr;
        if (!info.isAllVertices) {
            membership = &roundBitset(membershipScratch);
            input->forEach([&](VertexId v) {
                membership->set(static_cast<size_t>(v));
            });
        }

        Bitset *visited = nullptr;
        if (dedup && output)
            visited = &roundBitset(visitedScratch);

        const bool early_exit =
            stmt.trackChanges &&
            (stmt.getMetadataOr("filter_fused", false) ||
             stmt.getMetadataOr("pull_early_exit", false));

        const VertexId n = graph->numVertices();
        const unsigned threads = (numThreads > 1 && n > 256) ? numThreads : 1;

        // Pull iterates every destination; weight blocks by in-degree
        // straight from the CSR offset array (edge-aware schedules).
        const Parallelization par = info.schedule
                                        ? info.schedule->getParallelization()
                                        : Parallelization::VertexBased;
        auto cpu_sched = scheduleAs<SimpleCPUSchedule>(info.schedule);
        const int grain_hint = cpu_sched ? cpu_sched->grainSize() : 256;
        int64_t num_blocks = 1;
        if (threads > 1) {
            if (par == Parallelization::VertexBased) {
                num_blocks =
                    buildBlocks(n, n, grain_hint,
                                [](int64_t) { return EdgeId{1}; });
            } else {
                const auto offsets =
                    transposed ? graph->outOffsets() : graph->inOffsets();
                num_blocks = buildBlocks(
                    n, graph->numEdges() + n, grain_hint, [&](int64_t i) {
                        const auto idx = static_cast<size_t>(i);
                        return offsets[idx + 1] - offsets[idx] + 1;
                    });
            }
        } else {
            blockStarts.clear();
            blockStarts.push_back(0);
            blockStarts.push_back(n);
        }

        // Pull owns its destination, so UDF writes need no atomics — and
        // the atomics pass marks pull-variant RMWs is_atomic=false, so
        // this gate is belt-and-braces. forceAtomics validates the elision
        // by running whatever is marked atomic with real atomics.
        prepareWorkers(threads, forceAtomics, nullptr);

        // Compiled-tier kernel selection (pull). The destination filter is
        // evaluated per destination outside the kernel, so it only needs a
        // recognized FilterSpec, not a fused kernel variant.
        udf::KernelCtx kbase{};
        udf::PullKernelFn kernel = nullptr;
        const udf::FilterSpec *pull_fspec = nullptr;
        VertexData *pull_fprop = nullptr;
        if (kernel_spec) {
            bool ok = resolveKernelProps(*kernel_spec, kbase, queue);
            if (ok && dst_filter) {
                pull_fspec = filterSpecFor(stmt.dstFilter, *dst_filter);
                pull_fprop =
                    (pull_fspec && pull_fspec->slot >= 0 &&
                     pull_fspec->slot <
                         static_cast<int>(propsBySlot.size()))
                        ? propsBySlot[static_cast<size_t>(pull_fspec->slot)]
                        : nullptr;
                if (!pull_fprop || pull_fprop->isFloat())
                    ok = false;
            }
            if (ok) {
                udf::KernelQuery q;
                q.useAtomics = forceAtomics; // pull normally runs plain
                q.detCas = false;
                q.weighted = info.weighted;
                q.locked = threads > 1;
                q.isFloat = kbase.props[0]->isFloat();
                q.sourceIsFloat =
                    kbase.props[1] && kbase.props[1]->isFloat();
                q.hasFilter = false;
                q.hasMembership = membership != nullptr;
                kernel = udf::selectPullKernel(*kernel_spec, q);
            }
            if (kernel) {
                kbase.visited = visited;
                kbase.membership = membership;
                kbase.earlyExit = early_exit;
                ++kernelTraversals;
            }
        }

        auto worker_body = [&](unsigned w, int64_t blo, int64_t bhi) {
            WorkerCtx &ctx = workerCtxs[w];
            UdfRuntime &runtime = ctx.runtime;
            UdfStats &stats = ctx.stats;

            auto enqueue_sink = [&](VertexId x) {
                ctx.enqueuedFlag = true;
                if (!output)
                    return;
                if (!visited || visited->setAtomic(static_cast<size_t>(x)))
                    ctx.outBuffer.push_back(x);
            };
            auto update_min_sink = [&](VertexId x, int64_t priority) {
                if (!queue)
                    return false;
                if (threads > 1) {
                    std::lock_guard<std::mutex> lock(queueMutex);
                    return queue->updatePriorityMin(x, priority);
                }
                return queue->updatePriorityMin(x, priority);
            };
            runtime.bindEnqueue(enqueue_sink);
            runtime.bindUpdatePriorityMin(update_min_sink);

            udf::KernelCtx kctx = kbase;
            kctx.stats = &stats;
            kctx.outBuffer = output ? &ctx.outBuffer : nullptr;

            Reg args[3];
            args[2] = regOfInt(1);
            const unsigned nargs = info.weighted ? 3u : 2u;
            const bool stop_armed = stopArmed;

            for (int64_t b = blo; b < bhi; ++b) {
              // Bail fast once any worker latched the trip.
              if (stop_armed &&
                  stopTripped.load(std::memory_order_relaxed))
                  return;
              for (int64_t i = blockStarts[static_cast<size_t>(b)],
                           hi = blockStarts[static_cast<size_t>(b) + 1];
                   i < hi; ++i) {
                const auto v = static_cast<VertexId>(i);
                // Amortized cooperative-stop poll (see runPush): count the
                // destination plus its in-degree against the poll budget.
                if (stop_armed &&
                    (ctx.stopBudget -=
                     static_cast<int64_t>(neighbors(v).size()) + 1) <= 0) {
                    ctx.stopBudget = kCancelPollEdges;
                    if (pollStop())
                        return;
                }
                if (dst_filter) {
                    if (kernel) {
                        // Inline the matched filter: p[v] == imm.
                        stats.instructions += pull_fspec->instructions;
                        ++stats.propReads;
                        if (pull_fprop->getInt(v) != pull_fspec->imm)
                            continue;
                    } else {
                        Reg arg = regOfInt(v);
                        if (!runUdfBool(*dst_filter, {&arg, 1}, runtime,
                                        stats))
                            continue;
                    }
                }
                ++ctx.dsts;
                const auto nbrs = neighbors(v);
                const auto wts =
                    info.weighted ? weights(v) : std::span<const Weight>{};

                if (kernel) {
                    ctx.edges += kernel(kctx, v, nbrs.data(), nullptr,
                                        nbrs.size());
                    continue;
                }

                if (!taskStream) {
                    // Hot interpreter path: per-destination argument setup
                    // and hoisted filter null check; no recorder clears.
                    ctx.enqueuedFlag = false;
                    args[1] = regOfInt(v);
                    if (src_filter) {
                        for (size_t k = 0; k < nbrs.size(); ++k) {
                            const VertexId u = nbrs[k];
                            ++ctx.edges;
                            if (membership &&
                                !membership->test(static_cast<size_t>(u)))
                                continue;
                            args[0] = regOfInt(u);
                            if (!runUdfBool(*src_filter, {&args[0], 1},
                                            runtime, stats))
                                continue;
                            if (info.weighted)
                                args[2] = regOfInt(wts[k]);
                            runUdf(apply, {args, nargs}, runtime, stats);
                            if (early_exit && ctx.enqueuedFlag)
                                break;
                        }
                    } else {
                        for (size_t k = 0; k < nbrs.size(); ++k) {
                            const VertexId u = nbrs[k];
                            ++ctx.edges;
                            if (membership &&
                                !membership->test(static_cast<size_t>(u)))
                                continue;
                            args[0] = regOfInt(u);
                            if (info.weighted)
                                args[2] = regOfInt(wts[k]);
                            runUdf(apply, {args, nargs}, runtime, stats);
                            if (early_exit && ctx.enqueuedFlag)
                                break;
                        }
                    }
                    continue;
                }

                ctx.enqueuedFlag = false;
                uint64_t coarse_instr = 0;
                ctx.coarseAccesses.clear();
                for (size_t k = 0; k < nbrs.size(); ++k) {
                    const VertexId u = nbrs[k];
                    ++ctx.edges;
                    if (membership &&
                        !membership->test(static_cast<size_t>(u)))
                        continue;
                    if (src_filter) {
                        Reg arg = regOfInt(u);
                        if (!runUdfBool(*src_filter, {&arg, 1}, runtime,
                                        stats))
                            continue;
                    }
                    args[0] = regOfInt(u);
                    args[1] = regOfInt(v);
                    args[2] = regOfInt(info.weighted ? wts[k] : 1);
                    const uint64_t instr_before = stats.instructions;
                    ctx.recorder.accesses.clear();
                    runUdf(apply, {args, info.weighted ? 3u : 2u}, runtime,
                           stats);
                    if (taskStream) {
                        coarse_instr += stats.instructions - instr_before;
                        ctx.coarseAccesses.insert(
                            ctx.coarseAccesses.end(),
                            ctx.recorder.accesses.begin(),
                            ctx.recorder.accesses.end());
                    }
                    if (early_exit && ctx.enqueuedFlag)
                        break;
                }
                if (taskStream && !nbrs.empty()) {
                    TaskRecord task;
                    task.timestamp = round;
                    task.vertex = v;
                    task.instructions = coarse_instr + 10;
                    task.accesses = std::move(ctx.coarseAccesses);
                    model.onTask(std::move(task));
                    ctx.coarseAccesses.clear();
                }
              }
            }
        };

        if (threads == 1)
            worker_body(0, 0, 1);
        else
            hostPool().parallelFor(0, n ? num_blocks : 0, /*grain=*/1,
                                   worker_body);

        for (unsigned t = 0; t < threads; ++t) {
            const WorkerCtx &ctx = workerCtxs[t];
            info.udf.merge(ctx.stats);
            info.edgesTraversed += ctx.edges;
            info.destinationsScanned += ctx.dsts;
            if (output)
                output->addBulk(ctx.outBuffer);
            edgesTotal += ctx.edges;
        }
        info.frontierDegreeSum = info.edgesTraversed;
        if (stopArmed)
            throwIfStopped(); // surface a mid-round trip with full progress
        if (taskStream)
            model.onRoundBarrier();
    }

    void
    execVertexOps(const VertexSetIteratorStmt &stmt)
    {
        const bool profiling = prof::active();
        prof::ScopeTimer scope(profiling ? "vertex:" + stmt.label
                                         : std::string());
        CounterSet counters_before;
        if (profiling)
            counters_before = model.counters();

        TraversalInfo info;
        info.kind = TraversalInfo::Kind::VertexOps;
        info.stmt = &stmt;
        info.schedule = scheduleOf(stmt);

        VertexSet *input = nullptr;
        std::vector<VertexId> members;
        if (stmt.inputSet.empty()) {
            info.isAllVertices = true;
        } else {
            input = setByName(stmt.inputSet);
            // Program-level "vertices" sets are the full set.
            if (static_cast<VertexId>(input->size()) ==
                graph->numVertices())
                info.isAllVertices = true;
            members = input->toSorted();
        }
        const VertexId count = info.isAllVertices
                                   ? graph->numVertices()
                                   : static_cast<VertexId>(members.size());
        info.frontierSize = count;

        std::unique_ptr<VertexSet> output;
        if (!stmt.outputSet.empty()) {
            output = std::make_unique<VertexSet>(graph->numVertices());
            info.producesOutput = true;
        }

        const Chunk *apply =
            stmt.applyFunc.empty() ? nullptr : &chunkFor(stmt.applyFunc);
        const Chunk *filter =
            stmt.filterFunc.empty() ? nullptr : &chunkFor(stmt.filterFunc);
        if (apply)
            info.propsTouched = propsTouchedBy(*apply);

        UdfRuntime runtime;
        runtime.props = propsBySlot;
        runtime.globals = &globals;
        // Vertex ops run serially here, so marked sites may elide; the
        // forceAtomics knob re-enables them for elision validation.
        runtime.useAtomics = forceAtomics;
        auto noop_enqueue = [](VertexId) {};
        auto noop_update_min = [](VertexId, int64_t) { return false; };
        runtime.bindEnqueue(noop_enqueue);
        runtime.bindUpdatePriorityMin(noop_update_min);

        const bool stop_armed = stopArmed;
        int64_t stop_budget = kCancelPollEdges;
        for (VertexId i = 0; i < count; ++i) {
            // Amortized cooperative-stop poll, one per kCancelPollEdges
            // vertices: vertex-op rounds have no edge work to count.
            if (stop_armed && --stop_budget <= 0) {
                stop_budget = kCancelPollEdges;
                throwIfStopped();
            }
            const VertexId v =
                info.isAllVertices ? i : members[static_cast<size_t>(i)];
            Reg arg = regOfInt(v);
            if (filter) {
                if (runUdfBool(*filter, {&arg, 1}, runtime, info.udf) &&
                    output)
                    output->add(v);
            }
            if (apply) {
                runUdf(*apply, {&arg, 1}, runtime, info.udf);
                if (taskStream) {
                    TaskRecord task;
                    task.timestamp = round;
                    task.vertex = v;
                    task.instructions = 10;
                    model.onTask(std::move(task));
                }
            }
        }
        if (output) {
            info.outputSize = output->size();
            sets[stmt.outputSet] = std::move(output);
        }
        if (taskStream)
            model.onRoundBarrier();

        const Cycles charged = model.onTraversal(info);
        cycles += charged;
        prof::addCycles(charged);
        trace.push_back({stmt.label, Direction::Push, info.frontierSize, 0,
                         charged});
        if (profiling)
            emitTraversalEvent(stmt.label, info, charged, counters_before);
    }

    RunResult
    collectResult()
    {
        RunResult result;
        for (const auto &[name, data] : props) {
            std::vector<double> values(
                static_cast<size_t>(data->size()));
            for (VertexId v = 0; v < data->size(); ++v)
                values[static_cast<size_t>(v)] = data->asDouble(v);
            result.properties[name] = std::move(values);
        }
        result.cycles = model.finalCycles(cycles);
        result.counters = model.counters();
        result.trace = std::move(trace);
        if (prof::active()) {
            // Fold the model's final statistics into the profile exactly
            // once, so Profile::totalCounter matches RunResult.counters.
            for (const auto &[name, value] : result.counters.all())
                prof::counter(name, value);
            if (kernelTraversals)
                prof::counter("udf.kernel_traversals",
                              static_cast<double>(kernelTraversals));
            // Task-stream models account wall time themselves (finalCycles
            // exceeds the engine's per-statement charges); attribute the
            // difference so the profile total equals the reported cycles.
            if (result.cycles > cycles)
                prof::addCycles(result.cycles - cycles);
        }
        return result;
    }
};

ExecEngine::ExecEngine(Program &program, const RunInputs &inputs,
                       MachineModel &model, unsigned num_threads,
                       const RunLimits &limits, udf::UdfTier udf_tier,
                       bool force_atomics, ThreadPool *host_pool)
    : _impl(std::make_unique<Impl>(program, inputs, model, num_threads,
                                   limits, udf_tier, force_atomics,
                                   host_pool))
{
}

ExecEngine::~ExecEngine() = default;

RunResult
ExecEngine::run()
{
    _impl->startTime = std::chrono::steady_clock::now();
    _impl->armStop();
    _impl->model.reset(*_impl->graph);
    _impl->setup();
    FunctionPtr main = _impl->program.mainFunction();
    if (!main)
        throw std::runtime_error("engine: program has no main");
    _impl->execBody(main->body);
    return _impl->collectResult();
}

} // namespace ugc
