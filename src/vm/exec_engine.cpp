#include "vm/exec_engine.h"

#include <algorithm>
#include <cassert>
#include <limits>
#include <set>
#include <stdexcept>

#include "ir/walk.h"
#include "sched/swarm_schedule.h"
#include "support/bitset.h"
#include "support/parallel.h"
#include "support/rng.h"

namespace ugc {

namespace {

/** Scalar value with a float/int tag (main-level expression evaluation). */
struct Scalar
{
    int64_t i = 0;
    double f = 0.0;
    bool isFloat = false;

    int64_t
    asInt() const
    {
        return isFloat ? static_cast<int64_t>(f) : i;
    }
    double
    asDouble() const
    {
        return isFloat ? f : static_cast<double>(i);
    }
    bool truthy() const { return isFloat ? f != 0.0 : i != 0; }

    static Scalar ofInt(int64_t v) { return {v, 0.0, false}; }
    static Scalar ofFloat(double v) { return {0, v, true}; }
};

/** Distinct property arrays referenced by a compiled UDF. */
int
propsTouchedBy(const Chunk &chunk)
{
    std::set<int> slots;
    for (const Insn &insn : chunk.code) {
        switch (insn.op) {
          case Op::LoadProp:
          case Op::CasProp:
          case Op::ReduceProp:
            slots.insert(insn.b);
            break;
          case Op::StoreProp:
            slots.insert(insn.a);
            break;
          default:
            break;
        }
    }
    return static_cast<int>(slots.size());
}

/** Captures per-invocation property accesses for task-stream models. */
class TaskAccessRecorder : public AccessRecorder
{
  public:
    void
    record(Addr addr, bool is_write) override
    {
        accesses.push_back({addr, is_write});
    }

    std::vector<std::pair<Addr, bool>> accesses;
};

} // namespace

struct ExecEngine::Impl
{
    Impl(Program &program, const RunInputs &inputs, MachineModel &model,
         unsigned num_threads)
        : program(program), inputs(inputs), model(model),
          numThreads(num_threads)
    {
        if (!inputs.graph)
            throw std::invalid_argument("RunInputs.graph is null");
        graph = inputs.graph;
        taskStream = model.wantsTaskStream();
        if (taskStream)
            numThreads = 1;
    }

    // --- environment ------------------------------------------------------
    Program &program;
    const RunInputs &inputs;
    MachineModel &model;
    unsigned numThreads;
    const Graph *graph = nullptr;
    bool taskStream = false;

    AddrSpace space;
    SymbolTables symbols;
    std::map<std::string, std::unique_ptr<VertexData>> props;
    std::vector<VertexData *> propsBySlot;
    std::vector<Reg> globals;
    std::map<std::string, std::unique_ptr<VertexSet>> sets;
    std::map<std::string, std::unique_ptr<PrioQueue>> queues;
    std::map<std::string, std::unique_ptr<FrontierList>> lists;
    std::map<std::string, bool> transposedEdgeSets;
    std::map<std::string, Scalar> locals;
    std::map<std::string, Chunk> chunks;

    Cycles cycles = 0;
    int64_t round = 0;
    std::vector<IterationTrace> trace;
    bool returned = false;

    // --- setup ------------------------------------------------------------
    void
    setup()
    {
        symbols = SymbolTables::fromProgram(program);
        propsBySlot.resize(symbols.propSlots.size());
        globals.resize(symbols.globalSlots.size());

        for (const auto &decl : program.globals) {
            switch (decl->type.kind) {
              case TypeDesc::Kind::VertexData: {
                auto data = std::make_unique<VertexData>(
                    decl->name, decl->type.elem, graph->numVertices(),
                    space);
                if (decl->init) {
                    const Scalar init = evalScalar(decl->init);
                    if (data->isFloat())
                        data->fillFloat(init.asDouble());
                    else
                        data->fillInt(init.asInt());
                } else if (decl->hasMetadata("out_degrees_of")) {
                    for (VertexId v = 0; v < graph->numVertices(); ++v)
                        data->setInt(v, graph->outDegree(v));
                }
                propsBySlot[symbols.propSlots.at(decl->name)] = data.get();
                props[decl->name] = std::move(data);
                break;
              }
              case TypeDesc::Kind::Scalar: {
                const int slot = symbols.globalSlots.at(decl->name);
                Scalar value;
                if (decl->getMetadataOr("extern", false)) {
                    const int index =
                        decl->getMetadataOr("argv_index", -1);
                    if (index >= 0 &&
                        static_cast<size_t>(index) < inputs.args.size()) {
                        value = Scalar::ofInt(inputs.args[index]);
                    } else if (decl->name == "num_vertices") {
                        value = Scalar::ofInt(graph->numVertices());
                    } else if (decl->name == "num_edges") {
                        value = Scalar::ofInt(graph->numEdges());
                    }
                } else if (decl->init) {
                    value = evalScalar(decl->init);
                }
                if (decl->type.elem == ElemType::Float64)
                    globals[slot] = regOfFloat(value.asDouble());
                else
                    globals[slot] = regOfInt(value.asInt());
                break;
              }
              case TypeDesc::Kind::EdgeSet:
                transposedEdgeSets[decl->name] =
                    decl->hasMetadata("transpose_of");
                break;
              case TypeDesc::Kind::VertexSet:
                // Program-level vertex sets are `edges.getVertices()`:
                // the full set, materialized lazily at use.
                break;
              default:
                break;
            }
        }
    }

    const Chunk &
    chunkFor(const std::string &name)
    {
        auto it = chunks.find(name);
        if (it != chunks.end())
            return it->second;
        FunctionPtr func = program.findFunction(name);
        if (!func)
            throw std::runtime_error("engine: missing function " + name);
        return chunks.emplace(name, compileUdf(*func, symbols))
            .first->second;
    }

    bool
    globalIsFloat(const std::string &name) const
    {
        auto it = symbols.globalTypes.find(name);
        return it != symbols.globalTypes.end() &&
               it->second == ElemType::Float64;
    }

    // --- scalar expression evaluation --------------------------------------
    Scalar
    evalScalar(const ExprPtr &expr)
    {
        switch (expr->kind) {
          case ExprKind::IntConst:
            return Scalar::ofInt(
                static_cast<const IntConstExpr &>(*expr).value);
          case ExprKind::FloatConst:
            return Scalar::ofFloat(
                static_cast<const FloatConstExpr &>(*expr).value);
          case ExprKind::VarRef: {
            const auto &name = static_cast<const VarRefExpr &>(*expr).name;
            auto local = locals.find(name);
            if (local != locals.end())
                return local->second;
            auto slot = symbols.globalSlots.find(name);
            if (slot != symbols.globalSlots.end()) {
                if (globalIsFloat(name))
                    return Scalar::ofFloat(globals[slot->second].f);
                return Scalar::ofInt(globals[slot->second].i);
            }
            throw std::runtime_error("engine: unknown scalar " + name);
          }
          case ExprKind::PropRead: {
            const auto &node = static_cast<const PropReadExpr &>(*expr);
            VertexData *prop = props.at(node.prop).get();
            const auto v =
                static_cast<VertexId>(evalScalar(node.index).asInt());
            if (prop->isFloat())
                return Scalar::ofFloat(prop->getFloat(v));
            return Scalar::ofInt(prop->getInt(v));
          }
          case ExprKind::VertexSetSize: {
            const auto &name =
                static_cast<const VertexSetSizeExpr &>(*expr).set;
            return Scalar::ofInt(setByName(name)->size());
          }
          case ExprKind::Binary:
            return evalBinary(static_cast<const BinaryExpr &>(*expr));
          case ExprKind::Unary: {
            const auto &node = static_cast<const UnaryExpr &>(*expr);
            const Scalar operand = evalScalar(node.operand);
            if (node.op == UnaryOp::Not)
                return Scalar::ofInt(!operand.truthy());
            if (operand.isFloat)
                return Scalar::ofFloat(-operand.f);
            return Scalar::ofInt(-operand.i);
          }
          case ExprKind::Call:
            return evalCall(static_cast<const CallExpr &>(*expr));
          case ExprKind::CompareAndSwap:
            throw std::runtime_error(
                "engine: CompareAndSwap outside a UDF");
        }
        throw std::runtime_error("engine: unhandled expression");
    }

    Scalar
    evalBinary(const BinaryExpr &node)
    {
        const Scalar lhs = evalScalar(node.lhs);
        const Scalar rhs = evalScalar(node.rhs);
        const bool float_op = lhs.isFloat || rhs.isFloat;
        auto arith = [&](auto op) {
            if (float_op)
                return Scalar::ofFloat(op(lhs.asDouble(), rhs.asDouble()));
            return Scalar::ofInt(op(lhs.i, rhs.i));
        };
        auto compare = [&](auto op) {
            if (float_op)
                return Scalar::ofInt(op(lhs.asDouble(), rhs.asDouble()));
            return Scalar::ofInt(op(lhs.i, rhs.i));
        };
        switch (node.op) {
          case BinaryOp::Add: return arith([](auto a, auto b) { return a + b; });
          case BinaryOp::Sub: return arith([](auto a, auto b) { return a - b; });
          case BinaryOp::Mul: return arith([](auto a, auto b) { return a * b; });
          case BinaryOp::Div:
            if (float_op)
                return Scalar::ofFloat(lhs.asDouble() / rhs.asDouble());
            if (rhs.i == 0)
                throw std::runtime_error("engine: division by zero");
            return Scalar::ofInt(lhs.i / rhs.i);
          case BinaryOp::Mod:
            if (rhs.asInt() == 0)
                throw std::runtime_error("engine: modulo by zero");
            return Scalar::ofInt(lhs.asInt() % rhs.asInt());
          case BinaryOp::Lt: return compare([](auto a, auto b) { return a < b; });
          case BinaryOp::Le: return compare([](auto a, auto b) { return a <= b; });
          case BinaryOp::Gt: return compare([](auto a, auto b) { return a > b; });
          case BinaryOp::Ge: return compare([](auto a, auto b) { return a >= b; });
          case BinaryOp::Eq: return compare([](auto a, auto b) { return a == b; });
          case BinaryOp::Ne: return compare([](auto a, auto b) { return a != b; });
          case BinaryOp::And:
            return Scalar::ofInt(lhs.truthy() && rhs.truthy());
          case BinaryOp::Or:
            return Scalar::ofInt(lhs.truthy() || rhs.truthy());
        }
        throw std::runtime_error("engine: unhandled binary op");
    }

    Scalar
    evalCall(const CallExpr &call)
    {
        if (call.callee == "__pq_finished") {
            PrioQueue *queue = queueOf(call.args[0]);
            return Scalar::ofInt(queue->finished());
        }
        if (call.callee == "__hybrid_cond") {
            const auto &name =
                static_cast<const VarRefExpr &>(*call.args[0]).name;
            const double threshold = evalScalar(call.args[1]).asDouble();
            const auto criteria = static_cast<HybridCriteria>(
                evalScalar(call.args[2]).asInt());
            const VertexSet *frontier = setByName(name);
            if (criteria == HybridCriteria::InputSetSize) {
                return Scalar::ofInt(
                    frontier->size() <
                    threshold * graph->numVertices());
            }
            EdgeId degree_sum = 0;
            frontier->forEach(
                [&](VertexId v) { degree_sum += graph->outDegree(v); });
            return Scalar::ofInt(degree_sum <
                                 threshold * graph->numEdges());
        }
        throw std::runtime_error("engine: unknown intrinsic " +
                                 call.callee);
    }

    PrioQueue *
    queueOf(const ExprPtr &expr)
    {
        const auto &name = static_cast<const VarRefExpr &>(*expr).name;
        auto it = queues.find(name);
        if (it == queues.end())
            throw std::runtime_error("engine: unknown queue " + name);
        return it->second.get();
    }

    /** Resolve a vertex set; program-level "all vertices" sets and unknown
     *  names used as full sets materialize lazily. */
    VertexSet *
    setByName(const std::string &name)
    {
        auto it = sets.find(name);
        if (it != sets.end() && it->second)
            return it->second.get();
        // Program-level vertexset globals are edges.getVertices().
        const VarDeclStmt *global = program.findGlobal(name);
        if (global && global->type.kind == TypeDesc::Kind::VertexSet) {
            auto all = std::make_unique<VertexSet>(
                VertexSet::allOf(graph->numVertices()));
            VertexSet *raw = all.get();
            sets[name] = std::move(all);
            return raw;
        }
        throw std::runtime_error("engine: unknown vertex set " + name);
    }

    // --- statement execution ----------------------------------------------
    void
    execBody(const std::vector<StmtPtr> &body)
    {
        for (const StmtPtr &stmt : body) {
            if (returned)
                return;
            execStmt(stmt);
        }
    }

    void
    execStmt(const StmtPtr &stmt)
    {
        switch (stmt->kind) {
          case StmtKind::VarDecl:
            execVarDecl(static_cast<const VarDeclStmt &>(*stmt));
            break;
          case StmtKind::Assign:
            execAssign(static_cast<const AssignStmt &>(*stmt));
            break;
          case StmtKind::PropWrite: {
            const auto &node = static_cast<const PropWriteStmt &>(*stmt);
            VertexData *prop = props.at(node.prop).get();
            const auto v =
                static_cast<VertexId>(evalScalar(node.index).asInt());
            const Scalar value = evalScalar(node.value);
            if (prop->isFloat())
                prop->setFloat(v, value.asDouble());
            else
                prop->setInt(v, value.asInt());
            break;
          }
          case StmtKind::If: {
            const auto &node = static_cast<const IfStmt &>(*stmt);
            if (evalScalar(node.cond).truthy())
                execBody(node.thenBody);
            else
                execBody(node.elseBody);
            break;
          }
          case StmtKind::While: {
            const auto &node = static_cast<const WhileStmt &>(*stmt);
            // Bucket fusion (CPU GraphVM, ordered algorithms): rounds that
            // stay in the same priority bucket skip the global sync.
            std::string fused_queue;
            walkStmts(node.body,
                      [&](const StmtPtr &inner, const std::string &) {
                          if (inner->kind != StmtKind::EdgeSetIterator)
                              return;
                          const auto &iter =
                              static_cast<const EdgeSetIteratorStmt &>(
                                  *inner);
                          if (iter.getMetadataOr("bucket_fusion", false))
                              fused_queue = iter.queue;
                      });
            int64_t last_bucket = std::numeric_limits<int64_t>::min();
            while (!returned && evalScalar(node.cond).truthy()) {
                bool fused_round = false;
                if (!fused_queue.empty() && queues.count(fused_queue)) {
                    const int64_t bucket =
                        queues.at(fused_queue)->currentBucket();
                    fused_round = bucket == last_bucket;
                    last_bucket = bucket;
                }
                if (!fused_round)
                    cycles += model.onLoopIteration(node);
                ++round;
                execBody(node.body);
            }
            break;
          }
          case StmtKind::ForRange: {
            const auto &node = static_cast<const ForRangeStmt &>(*stmt);
            const int64_t lo = evalScalar(node.lo).asInt();
            const int64_t hi = evalScalar(node.hi).asInt();
            for (int64_t i = lo; i < hi && !returned; ++i) {
                locals[node.var] = Scalar::ofInt(i);
                cycles += model.onLoopIteration(node);
                ++round;
                execBody(node.body);
            }
            break;
          }
          case StmtKind::ExprStmt:
            evalScalar(static_cast<const ExprStmt &>(*stmt).expr);
            break;
          case StmtKind::EdgeSetIterator:
            execEdgeTraversal(
                static_cast<const EdgeSetIteratorStmt &>(*stmt));
            break;
          case StmtKind::VertexSetIterator:
            execVertexOps(
                static_cast<const VertexSetIteratorStmt &>(*stmt));
            break;
          case StmtKind::EnqueueVertex: {
            const auto &node = static_cast<const EnqueueVertexStmt &>(*stmt);
            const auto v =
                static_cast<VertexId>(evalScalar(node.vertex).asInt());
            setByName(node.output)->add(v);
            break;
          }
          case StmtKind::UpdatePriority: {
            const auto &node =
                static_cast<const UpdatePriorityStmt &>(*stmt);
            PrioQueue *queue = queues.at(node.queue).get();
            queue->updatePriorityMin(
                static_cast<VertexId>(evalScalar(node.vertex).asInt()),
                evalScalar(node.value).asInt());
            break;
          }
          case StmtKind::ListAppend: {
            const auto &node = static_cast<const ListAppendStmt &>(*stmt);
            if (!lists.count(node.list))
                lists[node.list] = std::make_unique<FrontierList>();
            lists.at(node.list)->append(*setByName(node.set));
            break;
          }
          case StmtKind::ListRetrieve: {
            const auto &node = static_cast<const ListRetrieveStmt &>(*stmt);
            sets[node.set] = std::make_unique<VertexSet>(
                lists.at(node.list)->retrieve());
            break;
          }
          case StmtKind::VertexSetDedup:
            setByName(static_cast<const VertexSetDedupStmt &>(*stmt).set)
                ->dedup();
            break;
          case StmtKind::Delete: {
            const auto &node = static_cast<const DeleteStmt &>(*stmt);
            sets.erase(node.name);
            break;
          }
          case StmtKind::Return:
            returned = true;
            break;
          default:
            throw std::runtime_error("engine: unexpected statement kind");
        }
    }

    void
    execVarDecl(const VarDeclStmt &decl)
    {
        switch (decl.type.kind) {
          case TypeDesc::Kind::Scalar: {
            Scalar value;
            if (decl.init)
                value = evalScalar(decl.init);
            if (decl.type.elem == ElemType::Float64 && !value.isFloat)
                value = Scalar::ofFloat(value.asDouble());
            locals[decl.name] = value;
            break;
          }
          case TypeDesc::Kind::VertexSet: {
            if (decl.init && decl.init->kind == ExprKind::Call) {
                const auto &call = static_cast<const CallExpr &>(*decl.init);
                if (call.callee == "__pq_dequeue") {
                    sets[decl.name] = std::make_unique<VertexSet>(
                        queueOf(call.args[0])->dequeueReadySet());
                    return;
                }
            }
            auto set = std::make_unique<VertexSet>(graph->numVertices());
            if (decl.init) {
                // GraphIt: `new vertexset{Vertex}(k)` holds vertices 0..k-1.
                const auto k = static_cast<VertexId>(
                    evalScalar(decl.init).asInt());
                for (VertexId v = 0; v < std::min(k, graph->numVertices());
                     ++v)
                    set->add(v);
            }
            sets[decl.name] = std::move(set);
            break;
          }
          case TypeDesc::Kind::PrioQueue:
            execNewQueue(decl);
            break;
          case TypeDesc::Kind::FrontierList:
            lists[decl.name] = std::make_unique<FrontierList>();
            break;
          default:
            throw std::runtime_error("engine: cannot declare " + decl.name);
        }
    }

    void
    execNewQueue(const VarDeclStmt &decl)
    {
        if (!decl.init || decl.init->kind != ExprKind::Call)
            throw std::runtime_error("engine: priority queue without init");
        const auto &call = static_cast<const CallExpr &>(*decl.init);
        const auto &prop_name =
            static_cast<const VarRefExpr &>(*call.args[0]).name;
        VertexData *priorities = props.at(prop_name).get();

        // The schedule's delta (resolved by ordered lowering onto the
        // traversal statement) overrides the program's default.
        int64_t delta = evalScalar(call.args[1]).asInt();
        walkStmts(program.mainFunction()->body,
                  [&](const StmtPtr &stmt, const std::string &) {
                      if (stmt->kind != StmtKind::EdgeSetIterator)
                          return;
                      const auto &node =
                          static_cast<const EdgeSetIteratorStmt &>(*stmt);
                      if (node.queue == decl.name &&
                          node.hasMetadata("delta"))
                          delta = node.getMetadata<int64_t>("delta");
                  });
        if (delta <= 0)
            delta = 1;

        auto queue = std::make_unique<PrioQueue>(priorities, delta);
        const auto start =
            static_cast<VertexId>(evalScalar(call.args[2]).asInt());
        priorities->setInt(start, 0);
        queue->enqueue(start);
        queues[decl.name] = std::move(queue);
    }

    void
    execAssign(const AssignStmt &node)
    {
        // Scalar targets first.
        auto local = locals.find(node.name);
        const bool is_global = symbols.globalSlots.count(node.name) != 0;
        if (local != locals.end() || is_global) {
            // Vertex-set moves also look like Assign; check the source.
            if (node.value->kind == ExprKind::VarRef) {
                const auto &src =
                    static_cast<const VarRefExpr &>(*node.value).name;
                if (sets.count(src)) {
                    moveSet(node.name, src);
                    return;
                }
            }
            const Scalar value = evalScalar(node.value);
            if (local != locals.end()) {
                local->second = value;
            } else {
                const int slot = symbols.globalSlots.at(node.name);
                if (globalIsFloat(node.name))
                    globals[slot] = regOfFloat(value.asDouble());
                else
                    globals[slot] = regOfInt(value.asInt());
            }
            return;
        }
        // Set-to-set assignment (frontier = output) or dequeue.
        if (node.value->kind == ExprKind::VarRef) {
            moveSet(node.name,
                    static_cast<const VarRefExpr &>(*node.value).name);
            return;
        }
        if (node.value->kind == ExprKind::Call) {
            const auto &call = static_cast<const CallExpr &>(*node.value);
            if (call.callee == "__pq_dequeue") {
                sets[node.name] = std::make_unique<VertexSet>(
                    queueOf(call.args[0])->dequeueReadySet());
                return;
            }
        }
        // Fallback: new scalar local.
        locals[node.name] = evalScalar(node.value);
    }

    void
    moveSet(const std::string &dst, const std::string &src)
    {
        auto it = sets.find(src);
        if (it == sets.end())
            throw std::runtime_error("engine: unknown set " + src);
        sets[dst] = std::move(it->second);
        sets.erase(it);
    }

    // --- traversals ----------------------------------------------------------
    std::shared_ptr<SimpleSchedule>
    scheduleOf(const Stmt &stmt)
    {
        auto schedule =
            stmt.getMetadataOr<SchedulePtr>("schedule", nullptr);
        auto simple = std::dynamic_pointer_cast<SimpleSchedule>(schedule);
        if (simple)
            return simple;
        return std::make_shared<SimpleSchedule>();
    }

    void
    execEdgeTraversal(const EdgeSetIteratorStmt &stmt)
    {
        TraversalInfo info;
        info.kind = TraversalInfo::Kind::EdgeTraversal;
        info.stmt = &stmt;
        info.schedule = scheduleOf(stmt);
        info.direction = stmt.getMetadataOr("direction", Direction::Push);
        info.weighted = stmt.getMetadataOr("needs_weight", false);

        const bool transposed = transposedEdgeSets.count(stmt.graph)
                                    ? transposedEdgeSets.at(stmt.graph)
                                    : false;

        // Input frontier.
        VertexSet *input = nullptr;
        info.isAllVertices = stmt.inputSet.empty();
        if (!info.isAllVertices) {
            input = setByName(stmt.inputSet);
            info.frontierSize = input->size();
            info.inputFormat = input->format();
        } else {
            info.frontierSize = graph->numVertices();
        }

        // Output frontier.
        std::unique_ptr<VertexSet> output;
        const bool wants_output = !stmt.outputSet.empty();
        if (wants_output) {
            output = std::make_unique<VertexSet>(graph->numVertices(),
                                                 VertexSetFormat::Sparse);
            info.producesOutput = true;
        }
        const bool dedup = stmt.getMetadataOr("apply_deduplication", false);

        // UDF and filters.
        const std::string variant = stmt.getMetadataOr<std::string>(
            "apply_variant", stmt.applyFunc);
        const Chunk &apply = chunkFor(variant);
        info.propsTouched = propsTouchedBy(apply);
        const Chunk *dst_filter = nullptr;
        if (!stmt.dstFilter.empty() &&
            !stmt.getMetadataOr("filter_fused", false))
            dst_filter = &chunkFor(stmt.dstFilter);
        const Chunk *src_filter = nullptr;
        if (!stmt.srcFilter.empty())
            src_filter = &chunkFor(stmt.srcFilter);

        PrioQueue *queue =
            stmt.queue.empty() ? nullptr : queues.at(stmt.queue).get();

        if (info.direction == Direction::Push) {
            runPush(stmt, info, input, output.get(), dedup, apply,
                    dst_filter, src_filter, queue, transposed);
        } else {
            runPull(stmt, info, input, output.get(), dedup, apply,
                    dst_filter, src_filter, queue, transposed);
        }

        if (wants_output) {
            info.outputSize = output->size();
            sets[stmt.outputSet] = std::move(output);
        }

        const Cycles charged = model.onTraversal(info);
        cycles += charged;
        trace.push_back({stmt.label, info.direction, info.frontierSize,
                         info.edgesTraversed, charged});
    }

    /** Iterate the input frontier as a sorted vector of vertices. */
    std::vector<VertexId>
    frontierVertices(const VertexSet *input)
    {
        if (!input)
            return {};
        return input->toSorted();
    }

    void
    runPush(const EdgeSetIteratorStmt &stmt, TraversalInfo &info,
            VertexSet *input, VertexSet *output, bool dedup,
            const Chunk &apply, const Chunk *dst_filter,
            const Chunk *src_filter, PrioQueue *queue, bool transposed)
    {
        (void)stmt; // metadata is consumed via info.stmt
        auto swarm_sched =
            scheduleAs<SimpleSwarmSchedule>(info.schedule);
        const bool fine_tasks =
            taskStream && swarm_sched &&
            swarm_sched->granularity() == TaskGranularity::FineGrained;
        const bool hints = taskStream && swarm_sched &&
                           swarm_sched->spatialHints();
        const bool shuffle =
            swarm_sched && swarm_sched->shuffleEdges();
        const bool barrier_frontiers =
            taskStream &&
            (!swarm_sched ||
             swarm_sched->frontiers() == SwarmFrontiers::Queues);

        Bitset visited;
        if (dedup && output)
            visited.resize(static_cast<size_t>(graph->numVertices()));

        std::vector<VertexId> frontier;
        if (!info.isAllVertices)
            frontier = frontierVertices(input);

        auto degree = [&](VertexId v) {
            return transposed ? graph->inDegree(v) : graph->outDegree(v);
        };
        auto neighbors = [&](VertexId v) {
            return transposed ? graph->inNeighbors(v)
                              : graph->outNeighbors(v);
        };
        auto weights = [&](VertexId v) {
            return transposed ? graph->inWeights(v) : graph->outWeights(v);
        };

        const VertexId frontier_count =
            info.isAllVertices ? graph->numVertices()
                               : static_cast<VertexId>(frontier.size());

        // Per-thread work: [lo, hi) over frontier indices.
        const unsigned threads =
            (numThreads > 1 && frontier_count > 256) ? numThreads : 1;
        std::vector<std::vector<VertexId>> thread_outputs(threads);
        std::vector<UdfStats> thread_stats(threads);
        std::vector<EdgeId> thread_edges(threads, 0);
        std::vector<EdgeId> thread_degsum(threads, 0);
        std::vector<EdgeId> thread_maxdeg(threads, 0);

        auto body = [&](unsigned tid, int64_t lo, int64_t hi) {
            UdfRuntime runtime;
            runtime.props = propsBySlot;
            runtime.globals = &globals;
            runtime.useAtomics = true;
            TaskAccessRecorder recorder;
            if (taskStream)
                runtime.recorder = &recorder;
            std::vector<VertexId> &out_buffer = thread_outputs[tid];
            std::vector<VertexId> spawn_buffer;
            runtime.enqueue = [&](VertexId x) {
                if (taskStream)
                    spawn_buffer.push_back(x);
                if (!output)
                    return;
                if (!dedup || visited.setAtomic(static_cast<size_t>(x)))
                    out_buffer.push_back(x);
            };
            runtime.updatePriorityMin = [&](VertexId x, int64_t priority) {
                const bool changed =
                    queue ? queue->updatePriorityMin(x, priority) : false;
                if (changed && taskStream)
                    spawn_buffer.push_back(x);
                return changed;
            };
            UdfStats &stats = thread_stats[tid];

            Rng shuffle_rng(0x5ca1ab1eULL);
            std::vector<int> order;

            for (int64_t i = lo; i < hi; ++i) {
                const VertexId u = info.isAllVertices
                                       ? static_cast<VertexId>(i)
                                       : frontier[static_cast<size_t>(i)];
                if (src_filter) {
                    Reg arg = regOfInt(u);
                    if (!runUdfBool(*src_filter, {&arg, 1}, runtime, stats))
                        continue;
                }
                const EdgeId deg = degree(u);
                thread_degsum[tid] += deg;
                thread_maxdeg[tid] = std::max(thread_maxdeg[tid], deg);
                const auto nbrs = neighbors(u);
                const auto wts =
                    info.weighted ? weights(u) : std::span<const Weight>{};

                order.resize(nbrs.size());
                for (size_t k = 0; k < nbrs.size(); ++k)
                    order[k] = static_cast<int>(k);
                if (shuffle && nbrs.size() > 2) {
                    for (size_t k = nbrs.size() - 1; k > 0; --k) {
                        std::swap(order[k],
                                  order[shuffle_rng.nextBounded(k + 1)]);
                    }
                }

                uint64_t coarse_instr = 0;
                std::vector<std::pair<Addr, bool>> coarse_accesses;
                std::vector<VertexId> coarse_spawns;

                for (size_t oi = 0; oi < nbrs.size(); ++oi) {
                    const size_t k = static_cast<size_t>(order[oi]);
                    const VertexId v = nbrs[k];
                    ++thread_edges[tid];
                    if (dst_filter) {
                        Reg arg = regOfInt(v);
                        if (!runUdfBool(*dst_filter, {&arg, 1}, runtime,
                                        stats))
                            continue;
                    }
                    Reg args[3] = {regOfInt(u), regOfInt(v),
                                   regOfInt(info.weighted ? wts[k] : 1)};
                    const uint64_t instr_before = stats.instructions;
                    recorder.accesses.clear();
                    spawn_buffer.clear();
                    runUdf(apply, {args, info.weighted ? 3u : 2u}, runtime,
                           stats);
                    if (taskStream) {
                        const uint64_t instr =
                            stats.instructions - instr_before;
                        if (fine_tasks) {
                            TaskRecord task;
                            task.timestamp = round;
                            // The task is gated by its source's spawn.
                            task.vertex = u;
                            task.instructions = instr;
                            task.accesses = recorder.accesses;
                            task.spawns = spawn_buffer;
                            if (hints && !recorder.accesses.empty())
                                task.hint = recorder.accesses.front().first;
                            model.onTask(std::move(task));
                        } else {
                            coarse_instr += instr;
                            coarse_accesses.insert(
                                coarse_accesses.end(),
                                recorder.accesses.begin(),
                                recorder.accesses.end());
                            coarse_spawns.insert(coarse_spawns.end(),
                                                 spawn_buffer.begin(),
                                                 spawn_buffer.end());
                        }
                    }
                }
                if (taskStream && !fine_tasks) {
                    TaskRecord task;
                    task.timestamp = round;
                    task.vertex = u;
                    task.instructions = coarse_instr + 10;
                    task.accesses = std::move(coarse_accesses);
                    task.spawns = std::move(coarse_spawns);
                    model.onTask(std::move(task));
                }
            }
        };

        if (threads == 1) {
            body(0, 0, frontier_count);
        } else {
            ThreadPool::global().parallelFor(
                0, frontier_count, [&](int64_t lo, int64_t hi) {
                    // Thread id derived from the chunk (chunks are
                    // contiguous, one per worker).
                    const int64_t chunk =
                        (frontier_count + threads - 1) / threads;
                    body(static_cast<unsigned>(lo / chunk), lo, hi);
                });
        }

        for (unsigned t = 0; t < threads; ++t) {
            info.udf.merge(thread_stats[t]);
            info.edgesTraversed += thread_edges[t];
            info.frontierDegreeSum += thread_degsum[t];
            info.frontierDegreeMax =
                std::max<EdgeId>(info.frontierDegreeMax, thread_maxdeg[t]);
            if (output)
                for (VertexId v : thread_outputs[t])
                    output->add(v);
        }
        if (barrier_frontiers)
            model.onRoundBarrier();
    }

    void
    runPull(const EdgeSetIteratorStmt &stmt, TraversalInfo &info,
            VertexSet *input, VertexSet *output, bool dedup,
            const Chunk &apply, const Chunk *dst_filter,
            const Chunk *src_filter, PrioQueue *queue, bool transposed)
    {
        // Pull swaps roles: iterate destinations, scan in-neighbors.
        auto neighbors = [&](VertexId v) {
            return transposed ? graph->outNeighbors(v)
                              : graph->inNeighbors(v);
        };
        auto weights = [&](VertexId v) {
            return transposed ? graph->outWeights(v) : graph->inWeights(v);
        };

        // Membership structure for the input frontier.
        Bitset membership;
        if (!info.isAllVertices) {
            membership.resize(static_cast<size_t>(graph->numVertices()));
            input->forEach([&](VertexId v) {
                membership.set(static_cast<size_t>(v));
            });
        }

        Bitset visited;
        if (dedup && output)
            visited.resize(static_cast<size_t>(graph->numVertices()));

        const bool early_exit =
            stmt.trackChanges &&
            (stmt.getMetadataOr("filter_fused", false) ||
             stmt.getMetadataOr("pull_early_exit", false));

        const VertexId n = graph->numVertices();
        const unsigned threads = (numThreads > 1 && n > 256) ? numThreads : 1;
        std::vector<std::vector<VertexId>> thread_outputs(threads);
        std::vector<UdfStats> thread_stats(threads);
        std::vector<EdgeId> thread_edges(threads, 0);
        std::vector<VertexId> thread_dsts(threads, 0);

        auto body = [&](unsigned tid, int64_t lo, int64_t hi) {
            UdfRuntime runtime;
            runtime.props = propsBySlot;
            runtime.globals = &globals;
            runtime.useAtomics = false; // pull owns its destination
            TaskAccessRecorder recorder;
            if (taskStream)
                runtime.recorder = &recorder;
            std::vector<VertexId> &out_buffer = thread_outputs[tid];
            bool enqueued_flag = false;
            runtime.enqueue = [&](VertexId x) {
                enqueued_flag = true;
                if (!output)
                    return;
                if (!dedup || visited.setAtomic(static_cast<size_t>(x)))
                    out_buffer.push_back(x);
            };
            runtime.updatePriorityMin = [&](VertexId x, int64_t priority) {
                return queue ? queue->updatePriorityMin(x, priority)
                             : false;
            };
            UdfStats &stats = thread_stats[tid];

            for (int64_t i = lo; i < hi; ++i) {
                const auto v = static_cast<VertexId>(i);
                if (dst_filter) {
                    Reg arg = regOfInt(v);
                    if (!runUdfBool(*dst_filter, {&arg, 1}, runtime, stats))
                        continue;
                }
                ++thread_dsts[tid];
                const auto nbrs = neighbors(v);
                const auto wts =
                    info.weighted ? weights(v) : std::span<const Weight>{};
                enqueued_flag = false;
                uint64_t coarse_instr = 0;
                std::vector<std::pair<Addr, bool>> coarse_accesses;
                for (size_t k = 0; k < nbrs.size(); ++k) {
                    const VertexId u = nbrs[k];
                    ++thread_edges[tid];
                    if (!info.isAllVertices &&
                        !membership.test(static_cast<size_t>(u)))
                        continue;
                    if (src_filter) {
                        Reg arg = regOfInt(u);
                        if (!runUdfBool(*src_filter, {&arg, 1}, runtime,
                                        stats))
                            continue;
                    }
                    Reg args[3] = {regOfInt(u), regOfInt(v),
                                   regOfInt(info.weighted ? wts[k] : 1)};
                    const uint64_t instr_before = stats.instructions;
                    recorder.accesses.clear();
                    runUdf(apply, {args, info.weighted ? 3u : 2u}, runtime,
                           stats);
                    if (taskStream) {
                        coarse_instr += stats.instructions - instr_before;
                        coarse_accesses.insert(coarse_accesses.end(),
                                               recorder.accesses.begin(),
                                               recorder.accesses.end());
                    }
                    if (early_exit && enqueued_flag)
                        break;
                }
                if (taskStream && !nbrs.empty()) {
                    TaskRecord task;
                    task.timestamp = round;
                    task.vertex = v;
                    task.instructions = coarse_instr + 10;
                    task.accesses = std::move(coarse_accesses);
                    model.onTask(std::move(task));
                }
            }
        };

        if (threads == 1) {
            body(0, 0, n);
        } else {
            ThreadPool::global().parallelFor(0, n,
                                             [&](int64_t lo, int64_t hi) {
                const int64_t chunk = (n + threads - 1) / threads;
                body(static_cast<unsigned>(lo / chunk), lo, hi);
            });
        }

        for (unsigned t = 0; t < threads; ++t) {
            info.udf.merge(thread_stats[t]);
            info.edgesTraversed += thread_edges[t];
            info.destinationsScanned += thread_dsts[t];
            if (output)
                for (VertexId v : thread_outputs[t])
                    output->add(v);
        }
        info.frontierDegreeSum = info.edgesTraversed;
        if (taskStream)
            model.onRoundBarrier();
    }

    void
    execVertexOps(const VertexSetIteratorStmt &stmt)
    {
        TraversalInfo info;
        info.kind = TraversalInfo::Kind::VertexOps;
        info.stmt = &stmt;
        info.schedule = scheduleOf(stmt);

        VertexSet *input = nullptr;
        std::vector<VertexId> members;
        if (stmt.inputSet.empty()) {
            info.isAllVertices = true;
        } else {
            input = setByName(stmt.inputSet);
            // Program-level "vertices" sets are the full set.
            if (static_cast<VertexId>(input->size()) ==
                graph->numVertices())
                info.isAllVertices = true;
            members = input->toSorted();
        }
        const VertexId count = info.isAllVertices
                                   ? graph->numVertices()
                                   : static_cast<VertexId>(members.size());
        info.frontierSize = count;

        std::unique_ptr<VertexSet> output;
        if (!stmt.outputSet.empty()) {
            output = std::make_unique<VertexSet>(graph->numVertices());
            info.producesOutput = true;
        }

        const Chunk *apply =
            stmt.applyFunc.empty() ? nullptr : &chunkFor(stmt.applyFunc);
        const Chunk *filter =
            stmt.filterFunc.empty() ? nullptr : &chunkFor(stmt.filterFunc);
        if (apply)
            info.propsTouched = propsTouchedBy(*apply);

        UdfRuntime runtime;
        runtime.props = propsBySlot;
        runtime.globals = &globals;
        runtime.useAtomics = false;
        runtime.enqueue = [](VertexId) {};
        runtime.updatePriorityMin = [](VertexId, int64_t) { return false; };

        for (VertexId i = 0; i < count; ++i) {
            const VertexId v =
                info.isAllVertices ? i : members[static_cast<size_t>(i)];
            Reg arg = regOfInt(v);
            if (filter) {
                if (runUdfBool(*filter, {&arg, 1}, runtime, info.udf) &&
                    output)
                    output->add(v);
            }
            if (apply) {
                runUdf(*apply, {&arg, 1}, runtime, info.udf);
                if (taskStream) {
                    TaskRecord task;
                    task.timestamp = round;
                    task.vertex = v;
                    task.instructions = 10;
                    model.onTask(std::move(task));
                }
            }
        }
        if (output) {
            info.outputSize = output->size();
            sets[stmt.outputSet] = std::move(output);
        }
        if (taskStream)
            model.onRoundBarrier();

        const Cycles charged = model.onTraversal(info);
        cycles += charged;
        trace.push_back({stmt.label, Direction::Push, info.frontierSize, 0,
                         charged});
    }

    RunResult
    collectResult()
    {
        RunResult result;
        for (const auto &[name, data] : props) {
            std::vector<double> values(
                static_cast<size_t>(data->size()));
            for (VertexId v = 0; v < data->size(); ++v)
                values[static_cast<size_t>(v)] = data->asDouble(v);
            result.properties[name] = std::move(values);
        }
        result.cycles = model.finalCycles(cycles);
        result.counters = model.counters();
        result.trace = std::move(trace);
        return result;
    }
};

ExecEngine::ExecEngine(Program &program, const RunInputs &inputs,
                       MachineModel &model, unsigned num_threads)
    : _impl(std::make_unique<Impl>(program, inputs, model, num_threads))
{
}

ExecEngine::~ExecEngine() = default;

RunResult
ExecEngine::run()
{
    _impl->model.reset(*_impl->graph);
    _impl->setup();
    FunctionPtr main = _impl->program.mainFunction();
    if (!main)
        throw std::runtime_error("engine: program has no main");
    _impl->execBody(main->body);
    return _impl->collectResult();
}

} // namespace ugc
