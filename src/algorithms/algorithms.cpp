#include "algorithms/algorithms.h"

#include <stdexcept>

#include "frontend/sema.h"
#include "sched/apply.h"

namespace ugc::algorithms {

namespace {

// --- PageRank (topology-driven; Fig 8 column "PR") -------------------------
const char *kPageRankSource = R"(
element Vertex end
element Edge end
const edges : edgeset{Edge}(Vertex, Vertex) = load(argv[1]);
const vertices : vertexset{Vertex} = edges.getVertices();
const old_rank : vector{Vertex}(float) = 0.0;
const new_rank : vector{Vertex}(float) = 0.0;
const out_degree : vector{Vertex}(int) = edges.getOutDegrees();
const contrib : vector{Vertex}(float) = 0.0;
const damp : float = 0.85;
const beta_score : float = 0.0;
extern num_vertices : int;

func initRank(v : Vertex)
    old_rank[v] = 1.0 / num_vertices;
end

func computeContrib(v : Vertex)
    if out_degree[v] != 0
        contrib[v] = old_rank[v] / out_degree[v];
    else
        contrib[v] = 0.0;
    end
end

func updateEdge(src : Vertex, dst : Vertex)
    new_rank[dst] += contrib[src];
end

func updateVertex(v : Vertex)
    old_rank[v] = beta_score + damp * new_rank[v];
    new_rank[v] = 0.0;
end

func main()
    beta_score = (1.0 - damp) / num_vertices;
    vertices.apply(initRank);
    #s0# for i in 0 : atoi(argv[3])
        vertices.apply(computeContrib);
        #s1# edges.apply(updateEdge);
        vertices.apply(updateVertex);
    end
end
)";

// --- BFS (Fig 2 of the paper) ----------------------------------------------
const char *kBfsSource = R"(
element Vertex end
element Edge end
const edges : edgeset{Edge}(Vertex, Vertex) = load(argv[1]);
const vertices : vertexset{Vertex} = edges.getVertices();
const parent : vector{Vertex}(int) = -1;

func toFilter(v : Vertex) -> output : bool
    output = (parent[v] == -1);
end

func updateEdge(src : Vertex, dst : Vertex)
    parent[dst] = src;
end

func main()
    var frontier : vertexset{Vertex} = new vertexset{Vertex}(0);
    var start_vertex : int = atoi(argv[2]);
    frontier.addVertex(start_vertex);
    parent[start_vertex] = start_vertex;
    #s0# while (frontier.getVertexSetSize() != 0)
        #s1# var output : vertexset{Vertex} =
            edges.from(frontier).to(toFilter).applyModified(updateEdge, parent, true);
        delete frontier;
        frontier = output;
    end
    delete frontier;
end
)";

// --- SSSP with Δ-stepping (ordered; GraphIt CGO'20 formulation) -------------
const char *kSsspSource = R"(
element Vertex end
element Edge end
const edges : edgeset{Edge}(Vertex, Vertex, int) = load(argv[1]);
const dist : vector{Vertex}(int) = 2147483647;

func updateEdge(src : Vertex, dst : Vertex, weight : int)
    var new_dist : int = dist[src] + weight;
    pq.updatePriorityMin(dst, new_dist);
end

func main()
    var start_vertex : int = atoi(argv[2]);
    var pq : priority_queue{Vertex} =
        new priority_queue{Vertex}(dist, atoi(argv[3]), start_vertex);
    #s0# while (not pq.finished())
        var frontier : vertexset{Vertex} = pq.dequeue_ready_set();
        #s1# edges.from(frontier).applyUpdatePriority(updateEdge);
        delete frontier;
    end
end
)";

// --- Connected Components (label propagation with min reduction) ------------
const char *kCcSource = R"(
element Vertex end
element Edge end
const edges : edgeset{Edge}(Vertex, Vertex) = load(argv[1]);
const vertices : vertexset{Vertex} = edges.getVertices();
const IDs : vector{Vertex}(int) = 0;
extern num_vertices : int;

func initLabel(v : Vertex)
    IDs[v] = v;
end

func updateEdge(src : Vertex, dst : Vertex)
    IDs[dst] min= IDs[src];
end

func main()
    vertices.apply(initLabel);
    var frontier : vertexset{Vertex} = new vertexset{Vertex}(num_vertices);
    #s0# while (frontier.getVertexSetSize() != 0)
        #s1# var output : vertexset{Vertex} =
            edges.from(frontier).applyModified(updateEdge, IDs, true);
        delete frontier;
        frontier = output;
    end
    delete frontier;
end
)";

// --- Betweenness Centrality (forward sigma + backward dependences) ----------
const char *kBcSource = R"(
element Vertex end
element Edge end
const edges : edgeset{Edge}(Vertex, Vertex) = load(argv[1]);
const vertices : vertexset{Vertex} = edges.getVertices();
const num_paths : vector{Vertex}(float) = 0.0;
const dependences : vector{Vertex}(float) = 0.0;
const visited : vector{Vertex}(bool) = false;
const level : vector{Vertex}(int) = -1;
const round : int = 0;

func visitedFilter(v : Vertex) -> output : bool
    output = (visited[v] == false);
end

func forwardUpdate(src : Vertex, dst : Vertex)
    num_paths[dst] += num_paths[src];
end

func markVisited(v : Vertex)
    visited[v] = true;
    level[v] = round;
end

func backwardUpdate(src : Vertex, dst : Vertex)
    if (visited[dst] == true) and (level[dst] == level[src] - 1)
        dependences[dst] +=
            (num_paths[dst] / num_paths[src]) * (1.0 + dependences[src]);
    end
end

func main()
    var start_vertex : int = atoi(argv[2]);
    var frontier : vertexset{Vertex} = new vertexset{Vertex}(0);
    frontier.addVertex(start_vertex);
    num_paths[start_vertex] = 1.0;
    visited[start_vertex] = true;
    level[start_vertex] = 0;
    var trajectories : list{vertexset{Vertex}} = new list{vertexset{Vertex}}();
    #s0# while (frontier.getVertexSetSize() != 0)
        round = round + 1;
        #s1# var output : vertexset{Vertex} =
            edges.from(frontier).to(visitedFilter).applyModified(forwardUpdate, num_paths, true);
        output.apply(markVisited);
        trajectories.append(frontier);
        delete frontier;
        frontier = output;
    end
    delete frontier;
    var d : int = 0;
    #s2# while (d < round)
        var back : vertexset{Vertex} = trajectories.retrieve();
        #s3# edges.from(back).apply(backwardUpdate);
        delete back;
        d = d + 1;
    end
end
)";

// --- PageRankDelta (GraphIt's flagship data-driven PR variant) ---------------
const char *kPageRankDeltaSource = R"(
element Vertex end
element Edge end
const edges : edgeset{Edge}(Vertex, Vertex) = load(argv[1]);
const vertices : vertexset{Vertex} = edges.getVertices();
const cur_rank : vector{Vertex}(float) = 0.0;
const delta : vector{Vertex}(float) = 0.0;
const ngh_sum : vector{Vertex}(float) = 0.0;
const out_degree : vector{Vertex}(int) = edges.getOutDegrees();
const damp : float = 0.85;
const beta_score : float = 0.0;
const epsilon2 : float = 0.1;
extern num_vertices : int;

func initV(v : Vertex)
    delta[v] = 1.0 / num_vertices;
    cur_rank[v] = 0.0;
end

func updateEdge(src : Vertex, dst : Vertex)
    if out_degree[src] != 0
        ngh_sum[dst] += delta[src] / out_degree[src];
    end
end

func updateVertexFirstRound(v : Vertex) -> output : bool
    delta[v] = damp * ngh_sum[v] + beta_score;
    cur_rank[v] += delta[v];
    delta[v] = delta[v] - 1.0 / num_vertices;
    output = (delta[v] > epsilon2 * cur_rank[v]) or
             ((0.0 - delta[v]) > epsilon2 * cur_rank[v]);
    ngh_sum[v] = 0.0;
end

func updateVertex(v : Vertex) -> output : bool
    delta[v] = ngh_sum[v] * damp;
    cur_rank[v] += delta[v];
    output = (delta[v] > epsilon2 * cur_rank[v]) or
             ((0.0 - delta[v]) > epsilon2 * cur_rank[v]);
    ngh_sum[v] = 0.0;
end

func main()
    beta_score = (1.0 - damp) / num_vertices;
    var frontier : vertexset{Vertex} = new vertexset{Vertex}(num_vertices);
    vertices.apply(initV);
    #s0# for i in 0 : atoi(argv[3])
        #s1# edges.from(frontier).apply(updateEdge);
        if i == 0
            var first : vertexset{Vertex} = vertices.filter(updateVertexFirstRound);
            delete frontier;
            frontier = first;
        else
            var rest : vertexset{Vertex} = vertices.filter(updateVertex);
            delete frontier;
            frontier = rest;
        end
    end
end
)";

} // namespace

const std::vector<Algorithm> &
all()
{
    static const std::vector<Algorithm> algorithms = {
        {"pr", kPageRankSource, false, false, "old_rank"},
        {"bfs", kBfsSource, false, true, "parent"},
        {"sssp", kSsspSource, true, true, "dist"},
        {"cc", kCcSource, false, false, "IDs"},
        {"bc", kBcSource, false, true, "dependences"},
        // Beyond the paper's five: GraphIt's PageRankDelta, exercising
        // data-driven filtering with float thresholds.
        {"prd", kPageRankDeltaSource, false, false, "cur_rank"},
    };
    return algorithms;
}

const Algorithm &
byName(const std::string &name)
{
    for (const Algorithm &algorithm : all())
        if (algorithm.name == name)
            return algorithm;
    throw std::out_of_range("unknown algorithm: " + name);
}

ProgramPtr
buildProgram(const Algorithm &algorithm)
{
    return frontend::compileSource(algorithm.source, algorithm.name);
}

namespace {

void
tuneCpu(Program &program, const std::string &algorithm,
        datasets::GraphKind kind)
{
    const bool road = kind == datasets::GraphKind::Road;
    if (algorithm == "bfs" || algorithm == "bc") {
        // Hybrid direction + edge-aware parallelism: the classic
        // direction-optimizing schedule (§IV-C).
        SimpleCPUSchedule push;
        push.configDirection(Direction::Push)
            .configParallelization(Parallelization::EdgeAwareVertexBased);
        SimpleCPUSchedule pull;
        pull.configDirection(Direction::Pull, VertexSetFormat::Bitmap)
            .configParallelization(Parallelization::EdgeAwareVertexBased);
        applySchedule(program, "s1",
                         CompositeCPUSchedule(HybridCriteria::InputSetSize,
                                              road ? 0.5 : 0.15, push,
                                              pull));
    } else if (algorithm == "pr") {
        SimpleCPUSchedule sched;
        // Block size chosen so a destination slice fits the LLC at the
        // evaluated dataset scale.
        sched.configDirection(Direction::Pull)
            .configParallelization(Parallelization::EdgeAwareVertexBased)
            .configEdgeBlocking(true, 4096)
            .configNuma(true);
        applySchedule(program, "s1", sched);
    } else if (algorithm == "sssp") {
        SimpleCPUSchedule sched;
        sched.configDirection(Direction::Push)
            .configParallelization(Parallelization::EdgeAwareVertexBased)
            .configDelta(road ? 8192 : 2)
            .configBucketFusion(road);
        applySchedule(program, "s1", sched);
    } else if (algorithm == "cc" || algorithm == "prd") {
        SimpleCPUSchedule sched;
        sched.configDirection(Direction::Push)
            .configParallelization(Parallelization::EdgeAwareVertexBased);
        applySchedule(program, "s1", sched);
    }
}

void
tuneGpu(Program &program, const std::string &algorithm,
        datasets::GraphKind kind)
{
    const bool road = kind == datasets::GraphKind::Road;
    if (algorithm == "bfs" || algorithm == "bc") {
        if (road) {
            // Road graphs: tiny frontiers for thousands of iterations —
            // fused kernels matter more than direction (§III-C2).
            SimpleGPUSchedule sched;
            sched.configDirection(Direction::Push)
                .configLoadBalance(GpuLoadBalance::Twc)
                .configFrontierCreation(FrontierCreation::Fused)
                .configKernelFusion(true);
            applySchedule(program, "s1", sched);
            if (algorithm == "bc")
                applySchedule(program, "s3", sched);
        } else {
            SimpleGPUSchedule push;
            push.configDirection(Direction::Push)
                .configLoadBalance(GpuLoadBalance::Etwc)
                .configFrontierCreation(FrontierCreation::Fused);
            SimpleGPUSchedule pull;
            pull.configDirection(Direction::Pull, VertexSetFormat::Bitmap)
                .configLoadBalance(GpuLoadBalance::Cm)
                .configFrontierCreation(FrontierCreation::UnfusedBitmap);
            applySchedule(
                program, "s1",
                CompositeGPUSchedule(HybridCriteria::InputSetSize, 0.15,
                                     push, pull));
            if (algorithm == "bc")
                applySchedule(program, "s3", push);
        }
    } else if (algorithm == "pr") {
        SimpleGPUSchedule sched;
        sched.configDirection(Direction::Pull)
            .configLoadBalance(GpuLoadBalance::Etwc)
            .configEdgeBlocking(true, 4096);
        applySchedule(program, "s1", sched);
    } else if (algorithm == "sssp") {
        SimpleGPUSchedule sched;
        sched.configDirection(Direction::Push)
            .configLoadBalance(road ? GpuLoadBalance::Twc
                                    : GpuLoadBalance::Etwc)
            .configDelta(road ? 8192 : 2)
            .configKernelFusion(road);
        applySchedule(program, "s1", sched);
    } else if (algorithm == "cc") {
        SimpleGPUSchedule sched;
        sched.configDirection(Direction::Push)
            .configLoadBalance(GpuLoadBalance::Etwc)
            // Label propagation on high-diameter graphs runs many
            // near-empty rounds; fuse them into one kernel.
            .configKernelFusion(road);
        applySchedule(program, "s1", sched);
    }
}

void
tuneSwarm(Program &program, const std::string &algorithm,
          datasets::GraphKind kind)
{
    const bool road = kind == datasets::GraphKind::Road;
    SimpleSwarmSchedule sched;
    sched.configDirection(Direction::Push);
    if (algorithm == "bfs" || algorithm == "sssp") {
        // Converting vertex sets to task spawns unlocks cross-round
        // speculation; most of the road-graph speedup (§IV-E).
        sched.configFrontiers(SwarmFrontiers::VertexsetToTasks);
        if (road || algorithm == "bfs") {
            sched.taskGranularity(TaskGranularity::FineGrained);
            sched.configSpatialHints(true);
        } else {
            // High-degree graphs: per-edge subtasks cost more dispatch
            // than they save in aborts; stay coarse and selective.
            sched.taskGranularity(TaskGranularity::Coarse);
        }
        if (algorithm == "sssp")
            sched.configDelta(road ? 8192 : 2);
        applySchedule(program, "s1", sched);
    } else if (algorithm == "bc") {
        sched.configFrontiers(SwarmFrontiers::VertexsetToTasks);
        sched.taskGranularity(TaskGranularity::FineGrained);
        sched.configSpatialHints(true);
        applySchedule(program, "s1", sched);
        applySchedule(program, "s3", sched);
    } else if (algorithm == "cc" || algorithm == "pr") {
        sched.taskGranularity(TaskGranularity::FineGrained);
        sched.configSpatialHints(true);
        // High in-degree graphs: shuffle edge order to reduce aborts.
        sched.configShuffleEdges(!road);
        applySchedule(program, "s1", sched);
    }
}

void
tuneHb(Program &program, const std::string &algorithm,
       datasets::GraphKind kind)
{
    (void)kind;
    SimpleHBSchedule sched;
    if (algorithm == "bfs" || algorithm == "bc" || algorithm == "cc") {
        // Alignment-based partitioning (§III-C4); CC's all-vertex rounds
        // gain nothing from pull, so it stays push.
        sched.configLoadBalance(HBLoadBalance::Aligned);
        sched.configDirection(algorithm == "cc" ? HBDirection::Push
                                                : HBDirection::Hybrid);
        applySchedule(program, "s1", sched);
        if (algorithm == "bc")
            applySchedule(program, "s3", sched);
    } else if (algorithm == "pr" || algorithm == "sssp") {
        // Compute-intensive kernels use the blocked access method.
        sched.configLoadBalance(HBLoadBalance::Blocked);
        sched.configDirection(HBDirection::Push);
        if (algorithm == "sssp")
            sched.configDelta(kind == datasets::GraphKind::Road ? 8192 : 2);
        applySchedule(program, "s1", sched);
    }
}

} // namespace

void
applyTunedSchedule(Program &program, const std::string &algorithm,
                   const std::string &target, datasets::GraphKind kind)
{
    if (target == "cpu")
        tuneCpu(program, algorithm, kind);
    else if (target == "gpu")
        tuneGpu(program, algorithm, kind);
    else if (target == "swarm")
        tuneSwarm(program, algorithm, kind);
    else if (target == "hb")
        tuneHb(program, algorithm, kind);
    else
        throw std::out_of_range("unknown target: " + target);
}

} // namespace ugc::algorithms
