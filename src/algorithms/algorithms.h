/**
 * @file
 * The five evaluated algorithms (§IV-A) as GraphIt algorithm-language
 * sources, plus tuned schedules per (architecture, graph class).
 *
 * UGC compiles a single source specification per algorithm; all four
 * GraphVMs reuse it. Tuned schedules mirror the paper's: hybrid traversal
 * for BFS/BC, EdgeBlocking/NUMA for PageRank, bucket fusion for SSSP on
 * road graphs, load balancing (ETWC) for CC on GPUs, vertexset→tasks and
 * fine-grained splitting on Swarm, blocked/aligned partitioning on
 * HammerBlade.
 */
#ifndef UGC_ALGORITHMS_ALGORITHMS_H
#define UGC_ALGORITHMS_ALGORITHMS_H

#include <string>
#include <vector>

#include "graph/datasets.h"
#include "ir/program.h"

namespace ugc::algorithms {

struct Algorithm
{
    std::string name;        ///< "bfs", "sssp", "pr", "cc", "bc"
    std::string source;      ///< GraphIt algorithm-language text
    bool needsWeights;       ///< requires a weighted graph
    bool needsStartVertex;   ///< uses argv[2]
    std::string resultProp;  ///< property holding the answer
};

/** The evaluated algorithms, in the paper's order (PR, BFS, SSSP, CC, BC). */
const std::vector<Algorithm> &all();

/** Lookup by name. @throws std::out_of_range. */
const Algorithm &byName(const std::string &name);

/** Parse + sema an algorithm's source into GraphIR. */
ProgramPtr buildProgram(const Algorithm &algorithm);

/**
 * Attach the hand-tuned schedule for @p target ("cpu", "gpu", "swarm",
 * "hb") and graph class, like the per-(application, graph) tuning of §IV-A.
 * Leaves the program untouched for unknown combinations (baseline).
 */
void applyTunedSchedule(Program &program, const std::string &algorithm,
                        const std::string &target,
                        datasets::GraphKind kind);

} // namespace ugc::algorithms

#endif // UGC_ALGORITHMS_ALGORITHMS_H
