#include "runtime/prio_queue.h"

#include <cassert>
#include <stdexcept>

namespace ugc {

PrioQueue::PrioQueue(VertexData *priorities, int64_t delta)
    : _priorities(priorities), _delta(delta)
{
    if (delta <= 0)
        throw std::invalid_argument("PrioQueue delta must be positive");
    if (priorities->isFloat())
        throw std::invalid_argument("PrioQueue requires integer priorities");
    _lastDequeued.assign(static_cast<size_t>(priorities->size()), -1);
}

void
PrioQueue::enqueue(VertexId v)
{
    const int64_t priority = _priorities->getInt(v);
    if (priority >= kInfDist)
        return; // unreachable vertices never enter a bucket
    const int64_t bucket = bucketOf(priority);
    assert(bucket >= _minBucket);
    const size_t index = static_cast<size_t>(bucket - _minBucket);
    if (index >= _buckets.size())
        _buckets.resize(index + 1);
    _buckets[index].push_back(v);
}

bool
PrioQueue::updatePriorityMin(VertexId v, int64_t new_priority)
{
    if (new_priority >= _priorities->getInt(v))
        return false;
    _priorities->setInt(v, new_priority);
    enqueue(v);
    return true;
}

bool
PrioQueue::advanceToNonEmpty()
{
    size_t skip = 0;
    while (skip < _buckets.size()) {
        // A bucket may hold only stale entries; check liveness lazily.
        bool live = false;
        for (VertexId v : _buckets[skip]) {
            if (bucketOf(_priorities->getInt(v)) == _minBucket +
                static_cast<int64_t>(skip)) {
                live = true;
                break;
            }
        }
        if (live)
            break;
        ++skip;
    }
    if (skip == _buckets.size()) {
        _buckets.clear();
        return false;
    }
    if (skip > 0) {
        _buckets.erase(_buckets.begin(),
                       _buckets.begin() + static_cast<ptrdiff_t>(skip));
        _minBucket += static_cast<int64_t>(skip);
    }
    return true;
}

bool
PrioQueue::finished()
{
    return !advanceToNonEmpty();
}

int64_t
PrioQueue::currentBucket()
{
    return advanceToNonEmpty() ? _minBucket : -1;
}

uint64_t
PrioQueue::stateHash() const
{
    uint64_t h = 0x9e3779b97f4a7c15ULL ^ static_cast<uint64_t>(_minBucket);
    auto mix = [&h](uint64_t v) {
        h ^= v + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
    };
    for (const auto &bucket : _buckets) {
        mix(bucket.size());
        for (VertexId v : bucket)
            mix(static_cast<uint64_t>(v));
    }
    return h;
}

VertexSet
PrioQueue::dequeueReadySet()
{
    VertexSet frontier(_priorities->size(), VertexSetFormat::Sparse);
    if (!advanceToNonEmpty())
        return frontier;

    ++_stamp;
    ++_rounds;
    std::vector<VertexId> bucket = std::move(_buckets.front());
    _buckets.front().clear();
    for (VertexId v : bucket) {
        // Skip stale entries (priority moved to another bucket) and
        // duplicates (same vertex enqueued twice into this bucket).
        if (bucketOf(_priorities->getInt(v)) != _minBucket)
            continue;
        if (_lastDequeued[v] == _stamp)
            continue;
        _lastDequeued[v] = _stamp;
        frontier.add(v);
    }
    return frontier;
}

} // namespace ugc
