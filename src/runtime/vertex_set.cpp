#include "runtime/vertex_set.h"

#include <algorithm>
#include <atomic>
#include <cassert>

namespace ugc {

VertexSet::VertexSet(VertexId num_vertices, VertexSetFormat format)
    : _numVertices(num_vertices), _format(format)
{
    if (format == VertexSetFormat::Bitmap)
        _bitmap.resize(static_cast<size_t>(num_vertices));
    else if (format == VertexSetFormat::Boolmap)
        _boolmap.assign(static_cast<size_t>(num_vertices), 0);
}

VertexSet
VertexSet::allOf(VertexId num_vertices, VertexSetFormat format)
{
    VertexSet set(num_vertices, format);
    for (VertexId v = 0; v < num_vertices; ++v)
        set.add(v);
    return set;
}

VertexId
VertexSet::size() const
{
    if (_format == VertexSetFormat::Sparse)
        return static_cast<VertexId>(_sparse.size());
    return _denseCount;
}

bool
VertexSet::contains(VertexId v) const
{
    switch (_format) {
      case VertexSetFormat::Sparse:
        return std::find(_sparse.begin(), _sparse.end(), v) != _sparse.end();
      case VertexSetFormat::Bitmap:
        return _bitmap.test(static_cast<size_t>(v));
      case VertexSetFormat::Boolmap:
        return _boolmap[v] != 0;
    }
    return false;
}

void
VertexSet::add(VertexId v)
{
    assert(v >= 0 && v < _numVertices);
    switch (_format) {
      case VertexSetFormat::Sparse:
        _sparse.push_back(v);
        break;
      case VertexSetFormat::Bitmap:
        if (!_bitmap.test(static_cast<size_t>(v))) {
            _bitmap.set(static_cast<size_t>(v));
            ++_denseCount;
        }
        break;
      case VertexSetFormat::Boolmap:
        if (!_boolmap[v]) {
            _boolmap[v] = 1;
            ++_denseCount;
        }
        break;
    }
}

bool
VertexSet::addAtomic(VertexId v)
{
    assert(v >= 0 && v < _numVertices);
    switch (_format) {
      case VertexSetFormat::Bitmap: {
        if (_bitmap.setAtomic(static_cast<size_t>(v))) {
            reinterpret_cast<std::atomic<VertexId> &>(_denseCount)
                .fetch_add(1, std::memory_order_relaxed);
            return true;
        }
        return false;
      }
      case VertexSetFormat::Boolmap: {
        auto &cell = reinterpret_cast<std::atomic<uint8_t> &>(_boolmap[v]);
        if (cell.exchange(1, std::memory_order_relaxed) == 0) {
            reinterpret_cast<std::atomic<VertexId> &>(_denseCount)
                .fetch_add(1, std::memory_order_relaxed);
            return true;
        }
        return false;
      }
      case VertexSetFormat::Sparse:
        // Sparse parallel insertion is handled by per-thread buffers in the
        // execution engine; direct atomic insertion is not supported.
        assert(false && "addAtomic on sparse set");
        return false;
    }
    return false;
}

void
VertexSet::addBulk(std::span<const VertexId> vertices)
{
    switch (_format) {
      case VertexSetFormat::Sparse:
        _sparse.insert(_sparse.end(), vertices.begin(), vertices.end());
        break;
      case VertexSetFormat::Bitmap:
        for (VertexId v : vertices) {
            assert(v >= 0 && v < _numVertices);
            if (!_bitmap.test(static_cast<size_t>(v))) {
                _bitmap.set(static_cast<size_t>(v));
                ++_denseCount;
            }
        }
        break;
      case VertexSetFormat::Boolmap:
        for (VertexId v : vertices) {
            assert(v >= 0 && v < _numVertices);
            if (!_boolmap[v]) {
                _boolmap[v] = 1;
                ++_denseCount;
            }
        }
        break;
    }
}

void
VertexSet::dedup()
{
    if (_format != VertexSetFormat::Sparse)
        return; // dense formats are sets by construction
    std::sort(_sparse.begin(), _sparse.end());
    _sparse.erase(std::unique(_sparse.begin(), _sparse.end()),
                  _sparse.end());
}

void
VertexSet::clear()
{
    _sparse.clear();
    _bitmap.clear();
    std::fill(_boolmap.begin(), _boolmap.end(), 0);
    _denseCount = 0;
}

void
VertexSet::convertTo(VertexSetFormat format)
{
    if (format == _format)
        return;
    const std::vector<VertexId> members = toSorted();
    _format = format;
    _sparse.clear();
    _bitmap.resize(0);
    _boolmap.clear();
    _denseCount = 0;
    if (format == VertexSetFormat::Bitmap)
        _bitmap.resize(static_cast<size_t>(_numVertices));
    else if (format == VertexSetFormat::Boolmap)
        _boolmap.assign(static_cast<size_t>(_numVertices), 0);
    for (VertexId v : members)
        add(v);
}

std::vector<VertexId>
VertexSet::toSorted() const
{
    std::vector<VertexId> members;
    members.reserve(static_cast<size_t>(size()));
    forEach([&](VertexId v) { members.push_back(v); });
    std::sort(members.begin(), members.end());
    members.erase(std::unique(members.begin(), members.end()),
                  members.end());
    return members;
}

Addr
VertexSet::footprintBytes() const
{
    switch (_format) {
      case VertexSetFormat::Sparse:
        return static_cast<Addr>(_sparse.size()) * sizeof(VertexId);
      case VertexSetFormat::Bitmap:
        return static_cast<Addr>(_numVertices + 7) / 8;
      case VertexSetFormat::Boolmap:
        return static_cast<Addr>(_numVertices);
    }
    return 0;
}

bool
VertexSet::operator==(const VertexSet &other) const
{
    return _numVertices == other._numVertices &&
           toSorted() == other.toSorted();
}

} // namespace ugc
