/**
 * @file
 * VertexData: a typed per-vertex property array (Table II).
 *
 * Type-erased over ElemType so GraphIR programs can declare properties of
 * any scalar type; integer-family types share an int64 backing store and
 * Float64 uses a double store. Atomic read-modify-write entry points back
 * the CompareAndSwap / ReductionOp instructions inserted by the midend.
 */
#ifndef UGC_RUNTIME_VERTEX_DATA_H
#define UGC_RUNTIME_VERTEX_DATA_H

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "ir/types.h"
#include "runtime/addr_space.h"
#include "support/types.h"

namespace ugc {

class VertexData
{
  public:
    /**
     * @param name  property name (diagnostics, codegen)
     * @param type  scalar element type
     * @param size  number of vertices
     * @param space address space to carve the logical range from
     */
    VertexData(std::string name, ElemType type, VertexId size,
               AddrSpace &space);

    const std::string &name() const { return _name; }
    ElemType type() const { return _type; }
    VertexId size() const { return _size; }
    bool isFloat() const { return _type == ElemType::Float64; }

    /** Logical address of element @p v, for machine models. */
    Addr
    addrOf(VertexId v) const
    {
        return _base + static_cast<Addr>(v) * elemSize(_type);
    }

    // --- plain accessors -------------------------------------------------
    // Relaxed atomics rather than raw loads/stores: parallel traversals read
    // properties that other workers update through the atomic RMW entry
    // points below, and mixing those with non-atomic accesses is a data race
    // (flagged by ThreadSanitizer). Relaxed int64/double accesses compile to
    // the same single mov as the plain versions did.
    int64_t
    getInt(VertexId v) const
    {
        return asAtomic(_ints[v]).load(std::memory_order_relaxed);
    }
    double
    getFloat(VertexId v) const
    {
        return asAtomic(_floats[v]).load(std::memory_order_relaxed);
    }
    void
    setInt(VertexId v, int64_t value)
    {
        asAtomic(_ints[v]).store(value, std::memory_order_relaxed);
    }
    void
    setFloat(VertexId v, double value)
    {
        asAtomic(_floats[v]).store(value, std::memory_order_relaxed);
    }

    /** Acquire-ordered read; pairs with casIntRelease (deterministic CAS). */
    int64_t
    getIntAcquire(VertexId v) const
    {
        return asAtomic(_ints[v]).load(std::memory_order_acquire);
    }

    /** Read as double regardless of type (for reporting/validation). */
    double
    asDouble(VertexId v) const
    {
        return isFloat() ? _floats[v] : static_cast<double>(_ints[v]);
    }

    /** Fill every element with the same value. */
    void fillInt(int64_t value);
    void fillFloat(double value);

    // --- atomic read-modify-write ----------------------------------------
    /** CAS; @return true if the swap happened. */
    bool casInt(VertexId v, int64_t expected, int64_t desired);

    /** Release-ordered CAS; pairs with getIntAcquire (deterministic CAS). */
    bool casIntRelease(VertexId v, int64_t expected, int64_t desired);

    /** Atomic min; @return true if the stored value decreased. */
    bool minInt(VertexId v, int64_t value);
    bool minFloat(VertexId v, double value);

    /** Atomic max; @return true if the stored value increased. */
    bool maxInt(VertexId v, int64_t value);

    /** Atomic add. Always "changes" the value unless delta == 0. */
    void addInt(VertexId v, int64_t delta);
    void addFloat(VertexId v, double delta);

    /** Raw backing stores (bulk validation / snapshots). */
    const std::vector<int64_t> &ints() const { return _ints; }
    const std::vector<double> &floats() const { return _floats; }

  private:
    template <typename T>
    static std::atomic<T> &
    asAtomic(T &ref)
    {
        static_assert(sizeof(std::atomic<T>) == sizeof(T));
        return reinterpret_cast<std::atomic<T> &>(ref);
    }
    template <typename T>
    static const std::atomic<T> &
    asAtomic(const T &ref)
    {
        static_assert(sizeof(std::atomic<T>) == sizeof(T));
        return reinterpret_cast<const std::atomic<T> &>(ref);
    }

    std::string _name;
    ElemType _type;
    VertexId _size;
    Addr _base;
    std::vector<int64_t> _ints;
    std::vector<double> _floats;
};

} // namespace ugc

#endif // UGC_RUNTIME_VERTEX_DATA_H
