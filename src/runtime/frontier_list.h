/**
 * @file
 * FrontierList: an ordered list of VertexSets (Table II).
 *
 * Betweenness centrality's forward pass appends one frontier per level
 * (ListAppend) and the backward pass retrieves them in reverse
 * (ListRetrieve).
 */
#ifndef UGC_RUNTIME_FRONTIER_LIST_H
#define UGC_RUNTIME_FRONTIER_LIST_H

#include <stdexcept>
#include <vector>

#include "runtime/vertex_set.h"

namespace ugc {

class FrontierList
{
  public:
    /** Append a frontier (ListAppend). */
    void append(VertexSet frontier) { _frontiers.push_back(std::move(frontier)); }

    /** Remove and return the most recent frontier (ListRetrieve). */
    VertexSet
    retrieve()
    {
        if (_frontiers.empty())
            throw std::out_of_range("retrieve() on empty FrontierList");
        VertexSet frontier = std::move(_frontiers.back());
        _frontiers.pop_back();
        return frontier;
    }

    size_t size() const { return _frontiers.size(); }
    bool empty() const { return _frontiers.empty(); }

    const VertexSet &at(size_t index) const { return _frontiers.at(index); }

  private:
    std::vector<VertexSet> _frontiers;
};

} // namespace ugc

#endif // UGC_RUNTIME_FRONTIER_LIST_H
