/**
 * @file
 * Logical address space for machine models.
 *
 * Runtime arrays are assigned non-overlapping logical address ranges so the
 * cache / DRAM / conflict-detection models can reason about cache lines
 * without depending on host allocation addresses (which would break
 * determinism).
 */
#ifndef UGC_RUNTIME_ADDR_SPACE_H
#define UGC_RUNTIME_ADDR_SPACE_H

#include "support/types.h"

namespace ugc {

/** Cache line size assumed by every machine model (Table VI). */
inline constexpr Addr kCacheLineBytes = 64;

/** Cache line index of a logical address. */
inline Addr
lineOf(Addr addr)
{
    return addr / kCacheLineBytes;
}

/** Bump allocator of logical address ranges, line-aligned. */
class AddrSpace
{
  public:
    /** Allocate @p bytes, aligned to a cache line; returns the base. */
    Addr
    allocate(Addr bytes)
    {
        const Addr base = _next;
        const Addr padded =
            (bytes + kCacheLineBytes - 1) / kCacheLineBytes * kCacheLineBytes;
        _next += padded;
        return base;
    }

    /** Total bytes allocated so far. */
    Addr used() const { return _next; }

  private:
    Addr _next = kCacheLineBytes; // keep 0 as a null address
};

} // namespace ugc

#endif // UGC_RUNTIME_ADDR_SPACE_H
