/**
 * @file
 * VertexSet: the active-vertex frontier type (Table II).
 *
 * Supports the three concrete representations the paper's scheduling
 * language selects between — SPARSE (compact id list), BITMAP (1 bit per
 * vertex), BOOLMAP (1 byte per vertex) — with lossless conversions.
 * Machine models charge different traffic for each representation, which is
 * what the configFrontierCreation / pull_input_frontier schedule knobs
 * trade off.
 */
#ifndef UGC_RUNTIME_VERTEX_SET_H
#define UGC_RUNTIME_VERTEX_SET_H

#include <span>
#include <vector>

#include "ir/types.h"
#include "runtime/addr_space.h"
#include "support/bitset.h"
#include "support/types.h"

namespace ugc {

class VertexSet
{
  public:
    /** Empty set over a universe of @p num_vertices vertices. */
    explicit VertexSet(VertexId num_vertices = 0,
                       VertexSetFormat format = VertexSetFormat::Sparse);

    /** The full set {0, ..., num_vertices-1}. */
    static VertexSet allOf(VertexId num_vertices,
                           VertexSetFormat format = VertexSetFormat::Sparse);

    VertexId universe() const { return _numVertices; }
    VertexSetFormat format() const { return _format; }

    /** Number of member vertices. */
    VertexId size() const;

    bool empty() const { return size() == 0; }

    /** Membership test. O(1) for bitmap/boolmap, O(n) sparse unsorted. */
    bool contains(VertexId v) const;

    /**
     * Insert @p v. Sparse insertion does not deduplicate — callers that
     * need set semantics either dedup via VertexSetDedup (Table II) or
     * guard insertion with a CAS as the midend's lowering does.
     */
    void add(VertexId v);

    /**
     * Thread-safe insert for bitmap/boolmap formats.
     * @return true if the vertex was newly inserted.
     */
    bool addAtomic(VertexId v);

    /**
     * Insert a batch of vertices, resolving the representation once instead
     * of per element (the per-worker output-buffer merge path). Sparse
     * insertion appends without deduplicating, like add().
     */
    void addBulk(std::span<const VertexId> vertices);

    /** Remove duplicate sparse entries (keeps ascending order). */
    void dedup();

    /** Remove all members, keeping universe and format. */
    void clear();

    /** Convert in place to @p format. */
    void convertTo(VertexSetFormat format);

    /** Members in ascending order (materializes for bitmap/boolmap). */
    std::vector<VertexId> toSorted() const;

    /** Sparse member list in insertion order. @pre format() == Sparse. */
    const std::vector<VertexId> &sparse() const { return _sparse; }
    std::vector<VertexId> &mutableSparse() { return _sparse; }

    /** Invoke @p fn(v) for every member. Order: ascending for
     *  bitmap/boolmap, insertion order for sparse. */
    template <typename Fn>
    void
    forEach(Fn &&fn) const
    {
        switch (_format) {
          case VertexSetFormat::Sparse:
            for (VertexId v : _sparse)
                fn(v);
            break;
          case VertexSetFormat::Bitmap:
            _bitmap.forEach([&](size_t v) { fn(static_cast<VertexId>(v)); });
            break;
          case VertexSetFormat::Boolmap:
            for (VertexId v = 0; v < _numVertices; ++v)
                if (_boolmap[v])
                    fn(v);
            break;
        }
    }

    /** Bytes a machine model should charge for storing this set. */
    Addr footprintBytes() const;

    bool operator==(const VertexSet &other) const;

  private:
    VertexId _numVertices = 0;
    VertexSetFormat _format = VertexSetFormat::Sparse;

    std::vector<VertexId> _sparse;      // Sparse
    Bitset _bitmap;                     // Bitmap
    std::vector<uint8_t> _boolmap;      // Boolmap
    VertexId _denseCount = 0;           // member count for dense formats
};

} // namespace ugc

#endif // UGC_RUNTIME_VERTEX_SET_H
