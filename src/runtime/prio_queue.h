/**
 * @file
 * PrioQueue: the Δ-bucketed priority queue behind ordered algorithms
 * (SSSP with Δ-stepping) — the PrioQueue type of Table II and the
 * ordered-processing runtime of GraphIt (Zhang et al., CGO 2020).
 *
 * Priorities live in a VertexData array; the queue keeps lazily-maintained
 * buckets of width Δ. Stale entries (vertices whose priority decreased
 * after insertion) are skipped at dequeue time, the standard lazy-deletion
 * design.
 */
#ifndef UGC_RUNTIME_PRIO_QUEUE_H
#define UGC_RUNTIME_PRIO_QUEUE_H

#include <cstdint>
#include <vector>

#include "runtime/vertex_data.h"
#include "runtime/vertex_set.h"

namespace ugc {

class PrioQueue
{
  public:
    /**
     * @param priorities per-vertex priority array (integer typed)
     * @param delta      bucket width (Δ of Δ-stepping); must be > 0
     */
    PrioQueue(VertexData *priorities, int64_t delta);

    int64_t delta() const { return _delta; }

    /** Insert @p v with its current priority. */
    void enqueue(VertexId v);

    /**
     * Lower @p v's priority to @p new_priority if it improves, enqueueing
     * the vertex in its new bucket.
     * @return true if the priority decreased (UpdatePriorityMin node).
     */
    bool updatePriorityMin(VertexId v, int64_t new_priority);

    /** True when every bucket is empty (of live entries). */
    bool finished();

    /**
     * Pop the lowest non-empty bucket as a frontier of live vertices.
     * Each vertex appears at most once per dequeue.
     *
     * @param same_bucket_only with bucket fusion (the CPU GraphVM's
     *        optimization for road graphs), callers re-pop the *current*
     *        bucket until it stays empty before advancing.
     */
    VertexSet dequeueReadySet();

    /** Index of the current lowest non-empty bucket, or -1 if finished. */
    int64_t currentBucket();

    /** Number of dequeue rounds performed (drives sync-cost models). */
    int64_t roundsProcessed() const { return _rounds; }

    /**
     * Hash of the live queue state (current bucket + pending entries) for
     * the engine's convergence watchdog. Monotonic bookkeeping (_rounds,
     * dedup stamps) is excluded so a genuinely repeating state hashes
     * identically.
     */
    uint64_t stateHash() const;

  private:
    int64_t bucketOf(int64_t priority) const { return priority / _delta; }

    /** Drop leading empty buckets; returns false if all are empty. */
    bool advanceToNonEmpty();

    VertexData *_priorities;
    int64_t _delta;
    int64_t _minBucket = 0;
    int64_t _rounds = 0;
    std::vector<std::vector<VertexId>> _buckets; // indexed from _minBucket
    std::vector<int64_t> _lastDequeued; // per-vertex stamp for dedup
    int64_t _stamp = 0;
};

} // namespace ugc

#endif // UGC_RUNTIME_PRIO_QUEUE_H
