#include "runtime/vertex_data.h"

#include <atomic>
#include <cassert>

#include "support/faults.h"
#include "support/guard.h"

namespace ugc {

VertexData::VertexData(std::string name, ElemType type, VertexId size,
                       AddrSpace &space)
    : _name(std::move(name)), _type(type), _size(size),
      _base(space.allocate(static_cast<Addr>(size) * elemSize(type)))
{
    if (faults::anyArmed() && faults::shouldFail("runtime.alloc_fail"))
        throw GuardError({RunError::Kind::AllocFailed, 0,
                          "runtime.alloc_fail",
                          "injected allocation failure for property '" +
                              _name + "' (" +
                              std::to_string(static_cast<Addr>(size) *
                                             elemSize(type)) +
                              " bytes)"});
    if (isFloat())
        _floats.assign(static_cast<size_t>(size), 0.0);
    else
        _ints.assign(static_cast<size_t>(size), 0);
}

void
VertexData::fillInt(int64_t value)
{
    assert(!isFloat());
    std::fill(_ints.begin(), _ints.end(), value);
}

void
VertexData::fillFloat(double value)
{
    assert(isFloat());
    std::fill(_floats.begin(), _floats.end(), value);
}

bool
VertexData::casInt(VertexId v, int64_t expected, int64_t desired)
{
    return asAtomic(_ints[v]).compare_exchange_strong(
        expected, desired, std::memory_order_relaxed);
}

bool
VertexData::casIntRelease(VertexId v, int64_t expected, int64_t desired)
{
    return asAtomic(_ints[v]).compare_exchange_strong(
        expected, desired, std::memory_order_release,
        std::memory_order_relaxed);
}

bool
VertexData::minInt(VertexId v, int64_t value)
{
    auto &cell = asAtomic(_ints[v]);
    int64_t current = cell.load(std::memory_order_relaxed);
    while (value < current) {
        if (cell.compare_exchange_weak(current, value,
                                       std::memory_order_relaxed))
            return true;
    }
    return false;
}

bool
VertexData::minFloat(VertexId v, double value)
{
    auto &cell = asAtomic(_floats[v]);
    double current = cell.load(std::memory_order_relaxed);
    while (value < current) {
        if (cell.compare_exchange_weak(current, value,
                                       std::memory_order_relaxed))
            return true;
    }
    return false;
}

bool
VertexData::maxInt(VertexId v, int64_t value)
{
    auto &cell = asAtomic(_ints[v]);
    int64_t current = cell.load(std::memory_order_relaxed);
    while (value > current) {
        if (cell.compare_exchange_weak(current, value,
                                       std::memory_order_relaxed))
            return true;
    }
    return false;
}

void
VertexData::addInt(VertexId v, int64_t delta)
{
    asAtomic(_ints[v]).fetch_add(delta, std::memory_order_relaxed);
}

void
VertexData::addFloat(VertexId v, double delta)
{
    auto &cell = asAtomic(_floats[v]);
    double current = cell.load(std::memory_order_relaxed);
    while (!cell.compare_exchange_weak(current, current + delta,
                                       std::memory_order_relaxed)) {
    }
}

} // namespace ugc
