#include "autotuner/autotuner.h"

#include <stdexcept>

#include "sched/apply.h"

namespace ugc::autotuner {

namespace {

void
addCpuCandidates(std::vector<Candidate> &candidates, bool ordered)
{
    const struct
    {
        const char *name;
        Parallelization parallelization;
    } par_options[] = {
        {"vertex", Parallelization::VertexBased},
        {"edge-aware", Parallelization::EdgeAwareVertexBased},
    };
    for (const auto &par : par_options) {
        if (!ordered) {
            for (Direction direction : {Direction::Push, Direction::Pull}) {
                candidates.push_back(
                    {std::string("cpu/") + directionName(direction) + "/" +
                         par.name,
                     [=](Program &program, const std::string &label) {
                         SimpleCPUSchedule sched;
                         sched.configDirection(direction)
                             .configParallelization(par.parallelization);
                         applySchedule(program, label, sched);
                     }});
            }
            candidates.push_back(
                {std::string("cpu/HYBRID-0.15/") + par.name,
                 [=](Program &program, const std::string &label) {
                     SimpleCPUSchedule push, pull;
                     push.configDirection(Direction::Push)
                         .configParallelization(par.parallelization);
                     pull.configDirection(Direction::Pull)
                         .configParallelization(par.parallelization);
                     applySchedule(
                         program, label,
                         CompositeCPUSchedule(HybridCriteria::InputSetSize,
                                              0.15, push, pull));
                 }});
        } else {
            for (int64_t delta : {2, 1024, 8192}) {
                for (bool fusion : {false, true}) {
                    candidates.push_back(
                        {std::string("cpu/PUSH/") + par.name + "/delta" +
                             std::to_string(delta) +
                             (fusion ? "/bucket-fusion" : ""),
                         [=](Program &program, const std::string &label) {
                             SimpleCPUSchedule sched;
                             sched.configDirection(Direction::Push)
                                 .configParallelization(par.parallelization)
                                 .configDelta(delta)
                                 .configBucketFusion(fusion);
                             applySchedule(program, label, sched);
                         }});
                }
            }
        }
    }
    // EdgeBlocking + NUMA pull (PageRank-style traversals).
    if (!ordered) {
        candidates.push_back(
            {"cpu/PULL/edge-aware/blocked+numa",
             [](Program &program, const std::string &label) {
                 SimpleCPUSchedule sched;
                 sched.configDirection(Direction::Pull)
                     .configParallelization(
                         Parallelization::EdgeAwareVertexBased)
                     .configEdgeBlocking(true, 4096)
                     .configNuma(true);
                 applySchedule(program, label, sched);
             }});
    }
}

void
addGpuCandidates(std::vector<Candidate> &candidates, bool ordered)
{
    for (GpuLoadBalance lb : {GpuLoadBalance::VertexBased,
                              GpuLoadBalance::Twc, GpuLoadBalance::Cm,
                              GpuLoadBalance::Wm, GpuLoadBalance::Etwc}) {
        for (bool fusion : {false, true}) {
            candidates.push_back(
                {std::string("gpu/PUSH/") + gpuLoadBalanceName(lb) +
                     (fusion ? "/fused-kernel" : ""),
                 [=](Program &program, const std::string &label) {
                     SimpleGPUSchedule sched;
                     sched.configDirection(Direction::Push)
                         .configLoadBalance(lb)
                         .configKernelFusion(fusion);
                     if (ordered)
                         sched.configDelta(8192);
                     applySchedule(program, label, sched);
                 }});
        }
    }
    if (!ordered) {
        candidates.push_back(
            {"gpu/HYBRID-0.15/ETWC+CM",
             [](Program &program, const std::string &label) {
                 SimpleGPUSchedule push, pull;
                 push.configDirection(Direction::Push)
                     .configLoadBalance(GpuLoadBalance::Etwc);
                 pull.configDirection(Direction::Pull,
                                      VertexSetFormat::Bitmap)
                     .configLoadBalance(GpuLoadBalance::Cm)
                     .configFrontierCreation(
                         FrontierCreation::UnfusedBitmap);
                 applySchedule(program, label,
                                  CompositeGPUSchedule(
                                      HybridCriteria::InputSetSize, 0.15,
                                      push, pull));
             }});
    }
}

void
addSwarmCandidates(std::vector<Candidate> &candidates, bool ordered)
{
    for (SwarmFrontiers frontiers :
         {SwarmFrontiers::Queues, SwarmFrontiers::VertexsetToTasks}) {
        for (TaskGranularity granularity :
             {TaskGranularity::Coarse, TaskGranularity::FineGrained}) {
            for (bool hints : {false, true}) {
                if (hints && granularity == TaskGranularity::Coarse)
                    continue; // hints require single-address subtasks
                std::string name = "swarm/";
                name += frontiers == SwarmFrontiers::Queues ? "queues"
                                                            : "tasks";
                name += granularity == TaskGranularity::Coarse ? "/coarse"
                                                               : "/fine";
                if (hints)
                    name += "/hints";
                candidates.push_back(
                    {name,
                     [=](Program &program, const std::string &label) {
                         SimpleSwarmSchedule sched;
                         sched.configFrontiers(frontiers)
                             .taskGranularity(granularity)
                             .configSpatialHints(hints);
                         if (ordered)
                             sched.configDelta(8192);
                         applySchedule(program, label, sched);
                     }});
            }
        }
    }
}

void
addHbCandidates(std::vector<Candidate> &candidates, bool ordered)
{
    for (HBLoadBalance lb :
         {HBLoadBalance::VertexBased, HBLoadBalance::EdgeBased,
          HBLoadBalance::Blocked, HBLoadBalance::Aligned}) {
        for (HBDirection direction : {HBDirection::Push,
                                      HBDirection::Hybrid}) {
            if (ordered && direction != HBDirection::Push)
                continue;
            std::string name = std::string("hb/") + hbLoadBalanceName(lb) +
                               "/" +
                               (direction == HBDirection::Push ? "PUSH"
                                                               : "HYBRID");
            candidates.push_back(
                {name, [=](Program &program, const std::string &label) {
                     SimpleHBSchedule sched;
                     sched.configLoadBalance(lb).configDirection(direction);
                     if (ordered)
                         sched.configDelta(8192);
                     applySchedule(program, label, sched);
                 }});
        }
    }
}

} // namespace

std::vector<Candidate>
candidatesFor(const std::string &target, bool ordered)
{
    std::vector<Candidate> candidates;
    if (target == "cpu")
        addCpuCandidates(candidates, ordered);
    else if (target == "gpu")
        addGpuCandidates(candidates, ordered);
    else if (target == "swarm")
        addSwarmCandidates(candidates, ordered);
    else if (target == "hb")
        addHbCandidates(candidates, ordered);
    else
        throw std::out_of_range("autotuner: unknown target " + target);
    return candidates;
}

TuneResult
tune(const Program &program, GraphVM &vm, const RunInputs &inputs,
     const std::string &label, bool ordered)
{
    TuneResult result;
    for (const Candidate &candidate : candidatesFor(vm.name(), ordered)) {
        ProgramPtr variant = program.clone();
        candidate.apply(*variant, label);
        const Cycles cycles = vm.run(*variant, inputs).cycles;
        result.evaluated.push_back({candidate.description, cycles});
        if (result.best.empty() || cycles < result.bestCycles) {
            result.best = candidate.description;
            result.bestCycles = cycles;
        }
    }
    return result;
}

void
applyBest(Program &program, const std::string &target,
          const TuneResult &result, const std::string &label, bool ordered)
{
    for (const Candidate &candidate : candidatesFor(target, ordered)) {
        if (candidate.description == result.best) {
            candidate.apply(program, label);
            return;
        }
    }
    throw std::out_of_range("autotuner: unknown winner " + result.best);
}

} // namespace ugc::autotuner
