/**
 * @file
 * Schedule autotuner (§III-D: "the programmer or an autotuner [7] can
 * generate different variants of the same algorithm tailored to specific
 * graph inputs simply by supplying different schedules").
 *
 * Enumerates each GraphVM's schedule space for a labeled statement and
 * measures candidates on the backend's machine model; because models are
 * deterministic and fast, exhaustive search is practical, playing the
 * role OpenTuner plays for the original GraphIt.
 */
#ifndef UGC_AUTOTUNER_AUTOTUNER_H
#define UGC_AUTOTUNER_AUTOTUNER_H

#include <functional>
#include <string>
#include <vector>

#include "ir/program.h"
#include "vm/graphvm.h"

namespace ugc::autotuner {

/** One point in a backend's schedule space. */
struct Candidate
{
    std::string description;
    std::function<void(Program &, const std::string &label)> apply;
};

/** Outcome of a tuning run. */
struct TuneResult
{
    std::string best;     ///< description of the winning candidate
    Cycles bestCycles = 0;
    std::vector<std::pair<std::string, Cycles>> evaluated; ///< all points
};

/**
 * The candidate schedules for a backend ("cpu", "gpu", "swarm", "hb").
 * @param ordered the statement is an ordered (priority-queue) traversal,
 *        which restricts direction choices and adds Δ candidates
 */
std::vector<Candidate> candidatesFor(const std::string &target,
                                     bool ordered);

/**
 * Exhaustively tune the schedule of the statement labeled @p label.
 * The program itself is not modified; apply the winner with
 * applyBest().
 */
TuneResult tune(const Program &program, GraphVM &vm,
                const RunInputs &inputs, const std::string &label = "s1",
                bool ordered = false);

/** Re-apply a tuning winner (by description) to a program. */
void applyBest(Program &program, const std::string &target,
               const TuneResult &result, const std::string &label = "s1",
               bool ordered = false);

} // namespace ugc::autotuner

#endif // UGC_AUTOTUNER_AUTOTUNER_H
