#include "midend/pipeline.h"

#include "midend/atomics.h"
#include "midend/direction_lowering.h"
#include "midend/frontier_reuse.h"
#include "midend/ordered.h"
#include "midend/race_check.h"
#include "midend/udf_kernel_select.h"

namespace ugc::midend {

void
registerStandardPasses(PassManager &manager, SchedulePtr default_schedule,
                       const AnalyzeOptions &analyze)
{
    manager.addPass(
        std::make_unique<DirectionLoweringPass>(std::move(default_schedule)));
    manager.addPass(std::make_unique<AtomicsInsertionPass>());
    // Right after atomics insertion so it audits the final synchronization
    // decisions (and reads the same cached ConflictAnalysis).
    manager.addPass(std::make_unique<RaceCheckPass>(analyze));
    manager.addPass(std::make_unique<FrontierReusePass>());
    manager.addPass(std::make_unique<OrderedLoweringPass>());
    // Runs last so it sees the final per-variant UDFs (post direction /
    // atomics / ordered lowering) before backend-specific passes.
    manager.addPass(std::make_unique<UdfKernelSelectPass>());
}

PassManager
standardPipeline(SchedulePtr default_schedule)
{
    PassManager manager;
    registerStandardPasses(manager, std::move(default_schedule));
    return manager;
}

ProgramPtr
runStandardPipeline(const Program &program, SchedulePtr default_schedule)
{
    ProgramPtr lowered = program.clone();
    PassManager manager = standardPipeline(std::move(default_schedule));
    PipelineResult result = manager.run(*lowered);
    if (!result)
        throw PipelineError(result.failedPass, result.diagnostic);
    return lowered;
}

} // namespace ugc::midend
