#include "midend/pipeline.h"

#include "midend/atomics.h"
#include "midend/direction_lowering.h"
#include "midend/frontier_reuse.h"
#include "midend/ordered.h"

namespace ugc::midend {

PassManager
standardPipeline(SchedulePtr default_schedule)
{
    PassManager manager;
    manager.addPass(
        std::make_unique<DirectionLoweringPass>(std::move(default_schedule)));
    manager.addPass(std::make_unique<AtomicsInsertionPass>());
    manager.addPass(std::make_unique<FrontierReusePass>());
    manager.addPass(std::make_unique<OrderedLoweringPass>());
    return manager;
}

ProgramPtr
runStandardPipeline(const Program &program, SchedulePtr default_schedule)
{
    ProgramPtr lowered = program.clone();
    PassManager manager = standardPipeline(std::move(default_schedule));
    manager.run(*lowered);
    return lowered;
}

} // namespace ugc::midend
