#include "midend/pass.h"

#include <ostream>

#include "ir/printer.h"
#include "ir/verifier.h"
#include "midend/analyses.h"
#include "support/prof.h"

namespace ugc {

namespace {

const char *
statusName(PassStatus status)
{
    switch (status) {
      case PassStatus::Unchanged:
        return "unchanged";
      case PassStatus::Changed:
        return "changed";
      case PassStatus::Error:
        return "error";
    }
    return "?";
}

} // namespace

// --- ProfInstrumentation --------------------------------------------------

void
ProfInstrumentation::beforePass(const Pass &pass, const Program &program)
{
    (void)program;
    const bool record = prof::active();
    _entered.push_back(record);
    _starts.push_back(std::chrono::steady_clock::now());
    if (record)
        prof::current()->enterScope("pass:" + pass.name());
}

void
ProfInstrumentation::afterPass(const Pass &pass, const Program &program,
                               const PassResult &result)
{
    (void)pass;
    const bool entered = !_entered.empty() && _entered.back();
    const auto start = _starts.empty()
                           ? std::chrono::steady_clock::time_point()
                           : _starts.back();
    if (!_entered.empty()) {
        _entered.pop_back();
        _starts.pop_back();
    }
    if (!entered || !prof::active())
        return;
    const midend::IRStats stats = midend::computeIRStats(program);
    prof::counter("ir.functions", static_cast<double>(stats.functions));
    prof::counter("ir.statements", static_cast<double>(stats.statements));
    if (result.changedIR())
        prof::counter("ir.changed", 1.0);
    const auto elapsed = std::chrono::steady_clock::now() - start;
    prof::current()->exitScope(
        std::chrono::duration_cast<std::chrono::nanoseconds>(elapsed)
            .count());
}

// --- PrintIRInstrumentation -----------------------------------------------

void
PrintIRInstrumentation::afterPass(const Pass &pass, const Program &program,
                                  const PassResult &result)
{
    _out << "// *** IR dump after pass '" << pass.name() << "' ("
         << statusName(result.status) << ") ***\n"
         << printProgram(program) << '\n';
}

// --- PassManager ----------------------------------------------------------

PipelineResult
PassManager::run(Program &program)
{
    for (const PassPtr &pass : _passes) {
        for (auto &instrumentation : _instrumentations)
            instrumentation->beforePass(*pass, program);

        PassResult result;
        try {
            result = pass->run(program, _analyses);
        } catch (const std::exception &error) {
            result = PassResult::error(error.what());
        }

        for (auto it = _instrumentations.rbegin();
             it != _instrumentations.rend(); ++it)
            (*it)->afterPass(*pass, program, result);

        if (result.failed())
            return {false, pass->name(), result.diagnostic};

        if (result.changedIR()) {
            _analyses.invalidateAllExcept(pass->preservedAnalyses());
            if (_verifyEach) {
                const VerifierReport report = verify(program);
                if (!report.ok()) {
                    return {false, pass->name(),
                            "IR verifier failed after pass '" +
                                pass->name() + "':\n" + report.toString()};
                }
            }
        }
    }
    return {};
}

} // namespace ugc
