#include "midend/effects.h"

#include <algorithm>

#include "ir/walk.h"
#include "midend/analyses.h"

namespace ugc::midend {

const char *
accessIndexName(AccessIndex index)
{
    switch (index) {
      case AccessIndex::Src:
        return "src";
      case AccessIndex::Dst:
        return "dst";
      case AccessIndex::Self:
        return "self";
      case AccessIndex::Other:
        return "other";
    }
    return "?";
}

const char *
conflictKindName(ConflictKind kind)
{
    switch (kind) {
      case ConflictKind::NoConflict:
        return "NoConflict";
      case ConflictKind::ReducibleConflict:
        return "ReducibleConflict";
      case ConflictKind::UnsynchronizedRace:
        return "UnsynchronizedRace";
    }
    return "?";
}

const char *
accessKindName(AccessSite::Kind kind)
{
    switch (kind) {
      case AccessSite::Kind::Read:
        return "PropRead";
      case AccessSite::Kind::Write:
        return "PropWrite";
      case AccessSite::Kind::Reduce:
        return "ReductionOp";
      case AccessSite::Kind::Cas:
        return "CompareAndSwap";
      case AccessSite::Kind::PriorityUpdate:
        return "UpdatePriority";
    }
    return "?";
}

bool
UdfEffects::pure() const
{
    if (hasEnqueue || updatesPriority || !globalsWritten.empty())
        return false;
    for (const AccessSite &site : accesses)
        if (site.kind != AccessSite::Kind::Read)
            return false;
    return true;
}

std::set<std::string>
UdfEffects::propsRead() const
{
    std::set<std::string> props;
    for (const AccessSite &site : accesses) {
        if (site.isGlobal || site.kind == AccessSite::Kind::PriorityUpdate)
            continue;
        if (site.kind != AccessSite::Kind::Write)
            props.insert(site.prop); // RMWs read their current value too
    }
    return props;
}

std::set<std::string>
UdfEffects::propsWritten() const
{
    std::set<std::string> props;
    for (const AccessSite &site : accesses) {
        if (site.isGlobal || site.kind == AccessSite::Kind::PriorityUpdate)
            continue;
        if (site.kind != AccessSite::Kind::Read)
            props.insert(site.prop);
    }
    return props;
}

namespace {

const char *
stmtKindName(StmtKind kind)
{
    switch (kind) {
      case StmtKind::VarDecl:
        return "VarDecl";
      case StmtKind::Assign:
        return "Assign";
      case StmtKind::PropWrite:
        return "PropWrite";
      case StmtKind::Reduction:
        return "ReductionOp";
      case StmtKind::If:
        return "If";
      case StmtKind::While:
        return "While";
      case StmtKind::ForRange:
        return "ForRange";
      case StmtKind::ExprStmt:
        return "ExprStmt";
      case StmtKind::EdgeSetIterator:
        return "EdgeSetIterator";
      case StmtKind::VertexSetIterator:
        return "VertexSetIterator";
      case StmtKind::EnqueueVertex:
        return "EnqueueVertex";
      case StmtKind::UpdatePriority:
        return "UpdatePriority";
      default:
        return "Stmt";
    }
}

/** Whose vertex the index expression denotes, given the UDF's parameters.
 *  Anything that is not a direct parameter reference is Other — a
 *  conservative classification that makes the access shared. */
AccessIndex
classifyIndex(const ExprPtr &index, const Function &func)
{
    if (!index || index->kind != ExprKind::VarRef)
        return AccessIndex::Other;
    const std::string &name = static_cast<const VarRefExpr &>(*index).name;
    if (func.params.size() >= 2) {
        if (name == func.params[0].name)
            return AccessIndex::Src;
        if (name == func.params[1].name)
            return AccessIndex::Dst;
    } else if (func.params.size() == 1 && name == func.params[0].name) {
        return AccessIndex::Self;
    }
    return AccessIndex::Other;
}

/** Collect per-function effect summaries. */
UdfEffects
summarizeFunction(const Program &program, const Function &func)
{
    UdfEffects fx;
    fx.function = func.name;

    // Names that are local to the function: parameters, declared locals,
    // loop variables, and the named result.
    std::set<std::string> locals;
    for (const Param &param : func.params)
        locals.insert(param.name);
    if (func.hasResult())
        locals.insert(func.resultName);
    walkStmts(func.body, [&](const StmtPtr &stmt, const std::string &) {
        if (stmt->kind == StmtKind::VarDecl)
            locals.insert(static_cast<const VarDeclStmt &>(*stmt).name);
        else if (stmt->kind == StmtKind::ForRange)
            locals.insert(static_cast<const ForRangeStmt &>(*stmt).var);
    });

    const auto isScalarGlobal = [&](const std::string &name) {
        if (locals.count(name))
            return false;
        const VarDeclStmt *decl = program.findGlobal(name);
        return decl && decl->type.kind == TypeDesc::Kind::Scalar;
    };

    int ordinal = 0;
    walkStmts(func.body, [&](const StmtPtr &stmt, const std::string &) {
        ++ordinal;
        const std::string at =
            "#" + std::to_string(ordinal) + " " + stmtKindName(stmt->kind);

        switch (stmt->kind) {
          case StmtKind::PropWrite: {
            auto &node = static_cast<PropWriteStmt &>(*stmt);
            AccessSite site;
            site.kind = AccessSite::Kind::Write;
            site.prop = node.prop;
            site.index = classifyIndex(node.index, func);
            site.where = at;
            site.stmt = stmt.get();
            fx.accesses.push_back(site);
            break;
          }
          case StmtKind::Reduction: {
            auto &node = static_cast<ReductionStmt &>(*stmt);
            AccessSite site;
            site.kind = AccessSite::Kind::Reduce;
            site.prop = node.prop;
            site.index = classifyIndex(node.index, func);
            site.reductionOp = node.op;
            site.where = at;
            site.stmt = stmt.get();
            fx.accesses.push_back(site);
            break;
          }
          case StmtKind::UpdatePriority: {
            auto &node = static_cast<UpdatePriorityStmt &>(*stmt);
            AccessSite site;
            site.kind = AccessSite::Kind::PriorityUpdate;
            site.prop = node.queue;
            site.index = classifyIndex(node.vertex, func);
            site.where = at;
            site.stmt = stmt.get();
            fx.accesses.push_back(site);
            fx.updatesPriority = true;
            break;
          }
          case StmtKind::Assign: {
            auto &node = static_cast<AssignStmt &>(*stmt);
            if (isScalarGlobal(node.name)) {
                AccessSite site;
                site.kind = AccessSite::Kind::Write;
                site.prop = node.name;
                site.index = AccessIndex::Other;
                site.isGlobal = true;
                site.where = at;
                site.stmt = stmt.get();
                fx.accesses.push_back(site);
                fx.globalsWritten.insert(node.name);
            }
            break;
          }
          case StmtKind::EnqueueVertex:
            fx.hasEnqueue = true;
            break;
          default:
            break;
        }

        stmtExprs(stmt, [&](const ExprPtr &top) {
            walkExprs(top, [&](const ExprPtr &expr) {
                if (expr->kind == ExprKind::PropRead) {
                    auto &node = static_cast<PropReadExpr &>(*expr);
                    AccessSite site;
                    site.kind = AccessSite::Kind::Read;
                    site.prop = node.prop;
                    site.index = classifyIndex(node.index, func);
                    site.where = at;
                    site.expr = expr.get();
                    fx.accesses.push_back(site);
                } else if (expr->kind == ExprKind::CompareAndSwap) {
                    auto &node = static_cast<CompareAndSwapExpr &>(*expr);
                    AccessSite site;
                    site.kind = AccessSite::Kind::Cas;
                    site.prop = node.prop;
                    site.index = classifyIndex(node.index, func);
                    site.where = at;
                    site.expr = expr.get();
                    fx.accesses.push_back(site);
                } else if (expr->kind == ExprKind::VarRef) {
                    auto &node = static_cast<VarRefExpr &>(*expr);
                    if (isScalarGlobal(node.name))
                        fx.globalsRead.insert(node.name);
                }
            });
        });
    });
    return fx;
}

/** How a single-parameter filter UDF's "self" binds inside an edge
 *  traversal: the dst filter sees destinations, the src filter sources. */
AccessIndex
remapSelf(AccessIndex index, AccessIndex self_binding)
{
    return index == AccessIndex::Self ? self_binding : index;
}

/** Is @p index shared between parallel workers of this traversal? */
bool
isSharedIndex(const ConflictInfo &ci, AccessIndex index)
{
    if (!ci.parallel)
        return false;
    if (ci.vertexApply)
        return index != AccessIndex::Self;
    if (ci.direction == Direction::Pull)
        // Pull iterates destinations: each worker owns its dst exclusively
        // but may read/write many sources.
        return index == AccessIndex::Src || index == AccessIndex::Other;
    // Push (ordered traversals execute push-style): many sources target the
    // same destination concurrently. A deduplicated input frontier makes
    // the source side private; without dedup the same src can be live on
    // two workers at once.
    if (index == AccessIndex::Dst || index == AccessIndex::Other)
        return true;
    return index == AccessIndex::Src && !ci.dedup;
}

/** Classify every access site of @p function in the context of @p ci.
 *  @p self_binding resolves Self for filter UDFs (Src/Dst endpoint). */
void
judgeFunction(const TraversalConflicts &tc, ConflictInfo &ci,
              const std::string &function, AccessIndex self_binding)
{
    const UdfEffects *fx = tc.effectsOf(function);
    if (!fx)
        return;
    for (std::size_t i = 0; i < fx->accesses.size(); ++i) {
        const AccessSite &site = fx->accesses[i];
        AccessVerdict verdict;
        verdict.function = function;
        verdict.site = i;

        if (site.isGlobal) {
            // Scalar globals live in one shared slot: any plain write from
            // a parallel region races with every other worker.
            if (site.kind != AccessSite::Kind::Read && ci.parallel) {
                verdict.kind = ConflictKind::UnsynchronizedRace;
                verdict.reason = "plain write to global '" + site.prop +
                                 "' from a parallel traversal";
            } else {
                verdict.kind = ConflictKind::NoConflict;
                verdict.reason = ci.parallel ? "read-only access"
                                             : "serial traversal";
            }
            ci.verdicts.push_back(std::move(verdict));
            continue;
        }

        const AccessIndex index = remapSelf(site.index, self_binding);
        if (!isSharedIndex(ci, index)) {
            verdict.kind = ConflictKind::NoConflict;
            verdict.reason =
                ci.parallel
                    ? std::string(accessIndexName(index)) +
                          " index is private to its worker"
                    : "serial traversal";
        } else if (site.kind == AccessSite::Kind::Read) {
            verdict.kind = ConflictKind::NoConflict;
            verdict.reason = "read-only access";
        } else if (site.isRMW()) {
            verdict.kind = ConflictKind::ReducibleConflict;
            verdict.reason = std::string(accessKindName(site.kind)) +
                             " on shared '" + site.prop + "[" +
                             accessIndexName(index) + "]'";
        } else {
            verdict.kind = ConflictKind::UnsynchronizedRace;
            verdict.reason = "plain write to shared property '" + site.prop +
                             "' indexed by " + accessIndexName(index);
        }
        ci.verdicts.push_back(std::move(verdict));
    }
}

/** Static read/write sets over every UDF the traversal invokes. */
void
collectPropSets(const TraversalConflicts &tc, ConflictInfo &ci,
                const std::vector<std::string> &functions)
{
    std::set<std::string> reads;
    std::set<std::string> writes;
    for (const std::string &fn : functions) {
        const UdfEffects *fx = tc.effectsOf(fn);
        if (!fx)
            continue;
        const auto r = fx->propsRead();
        const auto w = fx->propsWritten();
        reads.insert(r.begin(), r.end());
        writes.insert(w.begin(), w.end());
    }
    ci.readProps.assign(reads.begin(), reads.end());
    ci.writeProps.assign(writes.begin(), writes.end());
}

} // namespace

bool
ConflictInfo::needsAtomics() const
{
    return std::any_of(verdicts.begin(), verdicts.end(),
                       [](const AccessVerdict &v) {
                           return v.kind == ConflictKind::ReducibleConflict;
                       });
}

bool
ConflictInfo::hasRace() const
{
    return std::any_of(verdicts.begin(), verdicts.end(),
                       [](const AccessVerdict &v) {
                           return v.kind == ConflictKind::UnsynchronizedRace;
                       });
}

const UdfEffects *
TraversalConflicts::effectsOf(const std::string &function) const
{
    auto it = effects.find(function);
    return it == effects.end() ? nullptr : &it->second;
}

UdfEffectsAnalysis::Result
UdfEffectsAnalysis::run(Program &program)
{
    Result summaries;
    for (const FunctionPtr &func : program.functions())
        summaries.emplace(func->name, summarizeFunction(program, *func));
    return summaries;
}

ConflictAnalysis::Result
ConflictAnalysis::run(Program &program)
{
    TraversalConflicts tc;
    tc.effects = UdfEffectsAnalysis::run(program);
    const TraversalInfo info = TraversalIndexAnalysis::run(program);

    for (const TraversalInfo::Entry &entry : info.traversals) {
        ConflictInfo ci;
        ci.stmt = entry.stmt;
        ci.edgeIter = entry.edgeIter;
        ci.path = entry.path;

        std::vector<std::string> used;
        if (entry.edgeIter) {
            const EdgeSetIteratorStmt &node = *entry.edgeIter;
            ci.applyFunc = node.getMetadataOr<std::string>("apply_variant",
                                                           node.applyFunc);
            ci.direction = node.getMetadataOr("direction", Direction::Push);
            ci.ordered =
                !node.queue.empty() || node.getMetadataOr("ordered", false);
            ci.dedup = node.getMetadataOr("apply_deduplication", false);
            // Edge traversals run on the parallel engine; whether more
            // than one worker actually executes is a runtime decision
            // (thread count + frontier size), so the static model must
            // assume parallel execution.
            ci.parallel = true;

            judgeFunction(tc, ci, ci.applyFunc, AccessIndex::Other);
            used.push_back(ci.applyFunc);
            const bool fused =
                node.getMetadataOr("filter_fused", false);
            if (!node.dstFilter.empty() && !fused) {
                judgeFunction(tc, ci, node.dstFilter, AccessIndex::Dst);
                used.push_back(node.dstFilter);
            }
            if (!node.srcFilter.empty()) {
                judgeFunction(tc, ci, node.srcFilter, AccessIndex::Src);
                used.push_back(node.srcFilter);
            }
        } else {
            const auto &node =
                static_cast<const VertexSetIteratorStmt &>(*entry.stmt);
            ci.vertexApply = true;
            ci.parallel = entry.stmt->getMetadataOr("is_parallel", false);
            if (!node.applyFunc.empty()) {
                ci.applyFunc = node.applyFunc;
                judgeFunction(tc, ci, node.applyFunc, AccessIndex::Self);
                used.push_back(node.applyFunc);
            }
            if (!node.filterFunc.empty()) {
                if (ci.applyFunc.empty())
                    ci.applyFunc = node.filterFunc;
                judgeFunction(tc, ci, node.filterFunc, AccessIndex::Self);
                used.push_back(node.filterFunc);
            }
        }
        collectPropSets(tc, ci, used);
        tc.traversals.push_back(std::move(ci));
    }
    return tc;
}

} // namespace ugc::midend
