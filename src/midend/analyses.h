/**
 * @file
 * Shared midend analyses cached by the AnalysisManager (DESIGN.md §7).
 *
 * An analysis computes a summary over a Program once; metadata-only passes
 * preserve it (Pass::preservedAnalyses) so later passes reuse the cached
 * result instead of re-walking the IR.
 */
#ifndef UGC_MIDEND_ANALYSES_H
#define UGC_MIDEND_ANALYSES_H

#include <cstddef>
#include <map>
#include <string>
#include <vector>

#include "ir/program.h"

namespace ugc::midend {

/**
 * Index of every traversal in the program: the EdgeSetIterator /
 * VertexSetIterator statements of main with their schedule label paths —
 * the statements the schedule-attachment addressing of
 * Program::applySchedule resolves against. Pointers stay valid until a
 * pass replaces statements (such a pass must not preserve this analysis).
 */
struct TraversalInfo
{
    struct Entry
    {
        Stmt *stmt = nullptr; ///< the traversal statement
        EdgeSetIteratorStmt *edgeIter = nullptr; ///< null for vertex iters
        std::string path;     ///< schedule label path ("s0:s1")
        std::string function; ///< enclosing function name
    };

    std::vector<Entry> traversals; ///< program order
    /** Schedule-attachment index: label path -> traversal statement. */
    std::map<std::string, Stmt *> byLabelPath;
    std::size_t edgeTraversals = 0;
    std::size_t orderedTraversals = 0; ///< priority-queue-driven iterators
};

/** Cached traversal/schedule-attachment index. */
struct TraversalIndexAnalysis
{
    static const char *key() { return "traversal-index"; }
    using Result = TraversalInfo;
    static Result run(Program &program);
};

/** IR size summary — the counters PassInstrumentation reports per pass. */
struct IRStats
{
    std::size_t functions = 0;
    std::size_t statements = 0; ///< across every function body, recursive
    std::size_t traversals = 0;
};

IRStats computeIRStats(const Program &program);

/** Cached IR size summary. */
struct IRStatsAnalysis
{
    static const char *key() { return "ir-stats"; }
    using Result = IRStats;
    static Result
    run(Program &program)
    {
        return computeIRStats(program);
    }
};

} // namespace ugc::midend

#endif // UGC_MIDEND_ANALYSES_H
