#include "midend/ordered.h"

#include "ir/walk.h"
#include "sched/cpu_schedule.h"

namespace ugc {

void
OrderedLoweringPass::run(Program &program)
{
    FunctionPtr main = program.mainFunction();
    if (!main)
        return;
    walkStmts(main->body, [&](const StmtPtr &stmt, const std::string &) {
        if (stmt->kind != StmtKind::EdgeSetIterator)
            return;
        auto &node = static_cast<EdgeSetIteratorStmt &>(*stmt);
        if (!node.getMetadataOr("ordered", false))
            return;

        auto schedule = node.getMetadataOr<SchedulePtr>("schedule", nullptr);
        auto simple = std::dynamic_pointer_cast<SimpleSchedule>(schedule);
        // Only an explicitly attached schedule overrides the program's
        // own Δ (argv); default-schedule baselines keep the algorithm's
        // parameter.
        if (simple && node.getMetadataOr("has_explicit_schedule", false)) {
            node.setMetadata("delta", simple->getDelta());
            if (auto cpu =
                    std::dynamic_pointer_cast<SimpleCPUSchedule>(simple))
                node.setMetadata("bucket_fusion", cpu->bucketFusion());
        }
        node.setMetadata("queue_updated", node.queue);
    });
}

} // namespace ugc
