#include "midend/ordered.h"

#include "sched/cpu_schedule.h"

namespace ugc {

PassResult
OrderedLoweringPass::run(Program &program, AnalysisManager &analyses)
{
    const midend::TraversalInfo &info =
        analyses.get<midend::TraversalIndexAnalysis>(program);
    int annotated = 0;
    for (const auto &entry : info.traversals) {
        if (!entry.edgeIter)
            continue;
        EdgeSetIteratorStmt &node = *entry.edgeIter;
        if (!node.getMetadataOr("ordered", false))
            continue;

        auto schedule = node.getMetadataOr<SchedulePtr>("schedule", nullptr);
        auto simple = std::dynamic_pointer_cast<SimpleSchedule>(schedule);
        // Only an explicitly attached schedule overrides the program's
        // own Δ (argv); default-schedule baselines keep the algorithm's
        // parameter.
        if (simple && node.getMetadataOr("has_explicit_schedule", false)) {
            node.setMetadata("delta", simple->getDelta());
            if (auto cpu =
                    std::dynamic_pointer_cast<SimpleCPUSchedule>(simple))
                node.setMetadata("bucket_fusion", cpu->bucketFusion());
        }
        node.setMetadata("queue_updated", node.queue);
        ++annotated;
    }
    return PassResult::changedIf(annotated > 0);
}

} // namespace ugc
