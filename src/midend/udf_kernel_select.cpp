#include "midend/udf_kernel_select.h"

#include "ir/walk.h"
#include "udf/compiler.h"
#include "udf/registry.h"

namespace ugc {

namespace midend {

UdfKernelInfo
UdfKernelAnalysis::run(Program &program)
{
    UdfKernelInfo info;
    const SymbolTables symbols = SymbolTables::fromProgram(program);
    for (const FunctionPtr &func : program.functions()) {
        walkStmts(func->body, [&](const StmtPtr &stmt, const std::string &) {
            if (stmt->kind != StmtKind::EdgeSetIterator)
                return;
            auto *iter = static_cast<EdgeSetIteratorStmt *>(stmt.get());
            ++info.traversals;
            const std::string variant =
                iter->getMetadataOr<std::string>("apply_variant",
                                                 iter->applyFunc);
            const FunctionPtr udf = program.findFunction(variant);
            if (!udf)
                return;
            try {
                const Chunk chunk = compileUdf(*udf, symbols);
                const auto spec = udf::matchUdfKernel(chunk);
                if (!spec)
                    return;
                info.matches.push_back({stmt.get(), variant, spec->name});
            } catch (const std::exception &) {
                // Bytecode compilation failures mean the interpreter tier
                // would reject this UDF too; nothing to select here.
            }
        });
    }
    return info;
}

} // namespace midend

PassResult
UdfKernelSelectPass::run(Program &program, AnalysisManager &analyses)
{
    const midend::UdfKernelInfo &info =
        analyses.get<midend::UdfKernelAnalysis>(program);
    bool changed = false;
    for (const auto &entry : info.matches) {
        if (entry.stmt->getMetadataOr<std::string>("udf_kernel", "") ==
            entry.kernel)
            continue;
        entry.stmt->setMetadata<std::string>("udf_kernel", entry.kernel);
        changed = true;
    }
    return PassResult::changedIf(changed);
}

} // namespace ugc
