#include "midend/atomics.h"

#include "ir/walk.h"
#include "midend/analyses.h"

namespace ugc {

namespace {

/** Mark every CAS/reduction in @p func with is_atomic = @p atomic.
 *  @return number of nodes marked. */
int
markFunction(Function &func, bool atomic)
{
    int marked = 0;
    walkStmts(func.body, [&](const StmtPtr &stmt, const std::string &) {
        if (stmt->kind == StmtKind::Reduction) {
            stmt->setMetadata("is_atomic", atomic);
            ++marked;
        }
        stmtExprs(stmt, [&](const ExprPtr &expr) {
            if (expr->kind == ExprKind::CompareAndSwap) {
                expr->setMetadata("is_atomic", atomic);
                ++marked;
            }
        });
        if (stmt->kind == StmtKind::UpdatePriority) {
            stmt->setMetadata("needs_atomic", atomic);
            ++marked;
        }
    });
    return marked;
}

} // namespace

PassResult
AtomicsInsertionPass::run(Program &program, AnalysisManager &analyses)
{
    const midend::TraversalInfo &info =
        analyses.get<midend::TraversalIndexAnalysis>(program);
    int marked = 0;
    for (const auto &entry : info.traversals) {
        if (!entry.edgeIter)
            continue;
        const EdgeSetIteratorStmt &node = *entry.edgeIter;
        if (!node.hasMetadata("apply_variant"))
            continue; // direction lowering has not run on this node
        const auto direction =
            node.getMetadataOr("direction", Direction::Push);
        FunctionPtr variant = program.findFunction(
            node.getMetadata<std::string>("apply_variant"));
        if (variant)
            marked += markFunction(*variant, direction == Direction::Push);
    }
    return PassResult::changedIf(marked > 0);
}

} // namespace ugc
