#include "midend/atomics.h"

#include <map>
#include <set>

#include "ir/walk.h"

namespace ugc {

PassResult
AtomicsInsertionPass::run(Program &program, AnalysisManager &analyses)
{
    // Warm the shared traversal index first: ConflictAnalysis recomputes it
    // privately, so later passes (ordered lowering) should still find it in
    // the manager's cache.
    analyses.get<midend::TraversalIndexAnalysis>(program);
    const midend::TraversalConflicts &conflicts =
        analyses.get<midend::ConflictAnalysis>(program);

    // A UDF can be invoked by several traversals (and a site judged once
    // per invocation context); a site needs an atomic if *any* context
    // makes it a reducible conflict.
    std::map<std::string, std::map<std::size_t, bool>> need;
    for (const midend::ConflictInfo &ci : conflicts.traversals) {
        for (const midend::AccessVerdict &verdict : ci.verdicts) {
            const midend::UdfEffects *fx =
                conflicts.effectsOf(verdict.function);
            if (!fx || !fx->accesses[verdict.site].isRMW())
                continue;
            bool &atomic = need[verdict.function][verdict.site];
            atomic = atomic ||
                     verdict.kind == midend::ConflictKind::ReducibleConflict;
        }
    }

    int marked = 0;
    for (const auto &[function, sites] : need) {
        const midend::UdfEffects *fx = conflicts.effectsOf(function);
        for (const auto &[index, atomic] : sites) {
            const midend::AccessSite &site = fx->accesses[index];
            if (site.stmt)
                site.stmt->setMetadata("is_atomic", atomic);
            else if (site.expr)
                site.expr->setMetadata("is_atomic", atomic);
            ++marked;
        }
    }

    // Publish each traversal's static property read/write sets so
    // downstream consumers (Swarm conflict detection, spatial hints,
    // future fusion) use the analysis result instead of re-deriving it.
    int exported = 0;
    for (const midend::ConflictInfo &ci : conflicts.traversals) {
        if (!ci.stmt)
            continue;
        ci.stmt->setMetadata("effects_reads", ci.readProps);
        ci.stmt->setMetadata("effects_writes", ci.writeProps);
        ++exported;
    }
    return PassResult::changedIf(marked > 0 || exported > 0);
}

} // namespace ugc
