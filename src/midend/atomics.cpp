#include "midend/atomics.h"

#include "ir/walk.h"

namespace ugc {

namespace {

/** Mark every CAS/reduction in @p func with is_atomic = @p atomic. */
void
markFunction(Function &func, bool atomic)
{
    walkStmts(func.body, [&](const StmtPtr &stmt, const std::string &) {
        if (stmt->kind == StmtKind::Reduction)
            stmt->setMetadata("is_atomic", atomic);
        stmtExprs(stmt, [&](const ExprPtr &expr) {
            if (expr->kind == ExprKind::CompareAndSwap)
                expr->setMetadata("is_atomic", atomic);
        });
        if (stmt->kind == StmtKind::UpdatePriority)
            stmt->setMetadata("needs_atomic", atomic);
    });
}

} // namespace

void
AtomicsInsertionPass::run(Program &program)
{
    FunctionPtr main = program.mainFunction();
    if (!main)
        return;
    walkStmts(main->body, [&](const StmtPtr &stmt, const std::string &) {
        if (stmt->kind != StmtKind::EdgeSetIterator)
            return;
        const auto &node = static_cast<const EdgeSetIteratorStmt &>(*stmt);
        if (!node.hasMetadata("apply_variant"))
            return; // direction lowering has not run on this node
        const auto direction =
            node.getMetadataOr("direction", Direction::Push);
        FunctionPtr variant = program.findFunction(
            node.getMetadata<std::string>("apply_variant"));
        if (variant)
            markFunction(*variant, direction == Direction::Push);
    });
}

} // namespace ugc
