#include "midend/analyses.h"

#include "ir/walk.h"

namespace ugc::midend {

TraversalInfo
TraversalIndexAnalysis::run(Program &program)
{
    TraversalInfo info;
    for (const FunctionPtr &func : program.functions()) {
        walkStmts(func->body,
                  [&](const StmtPtr &stmt, const std::string &path) {
                      if (stmt->kind != StmtKind::EdgeSetIterator &&
                          stmt->kind != StmtKind::VertexSetIterator)
                          return;
                      TraversalInfo::Entry entry;
                      entry.stmt = stmt.get();
                      entry.path = path;
                      entry.function = func->name;
                      if (stmt->kind == StmtKind::EdgeSetIterator) {
                          entry.edgeIter =
                              static_cast<EdgeSetIteratorStmt *>(stmt.get());
                          ++info.edgeTraversals;
                          if (stmt->getMetadataOr("ordered", false))
                              ++info.orderedTraversals;
                      }
                      if (!path.empty())
                          info.byLabelPath.emplace(path, stmt.get());
                      info.traversals.push_back(std::move(entry));
                  });
    }
    return info;
}

IRStats
computeIRStats(const Program &program)
{
    IRStats stats;
    stats.functions = program.functions().size();
    for (const FunctionPtr &func : program.functions()) {
        walkStmts(func->body,
                  [&](const StmtPtr &stmt, const std::string &) {
                      ++stats.statements;
                      if (stmt->kind == StmtKind::EdgeSetIterator ||
                          stmt->kind == StmtKind::VertexSetIterator)
                          ++stats.traversals;
                  });
    }
    return stats;
}

} // namespace ugc::midend
