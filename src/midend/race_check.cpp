#include "midend/race_check.h"

#include <map>
#include <ostream>
#include <set>
#include <sstream>

#include "ir/walk.h"

namespace ugc::midend {

namespace {

std::string
jsonEscape(const std::string &text)
{
    std::string out;
    out.reserve(text.size());
    for (char c : text) {
        switch (c) {
          case '"':
            out += "\\\"";
            break;
          case '\\':
            out += "\\\\";
            break;
          case '\n':
            out += "\\n";
            break;
          case '\t':
            out += "\\t";
            break;
          default:
            out += c;
        }
    }
    return out;
}

void
appendFindings(std::ostringstream &out,
               const std::vector<AnalyzeFinding> &findings)
{
    for (std::size_t i = 0; i < findings.size(); ++i) {
        const AnalyzeFinding &f = findings[i];
        out << "    {\"kind\": \"" << jsonEscape(f.kind) << "\", "
            << "\"function\": \"" << jsonEscape(f.function) << "\", "
            << "\"statement\": \"" << jsonEscape(f.statement) << "\", "
            << "\"property\": \"" << jsonEscape(f.property) << "\", "
            << "\"traversal\": \"" << jsonEscape(f.traversal) << "\", "
            << "\"detail\": \"" << jsonEscape(f.detail) << "\"}";
        out << (i + 1 < findings.size() ? ",\n" : "\n");
    }
}

void
printFinding(std::ostream &out, const std::string &severity,
             const AnalyzeFinding &f)
{
    out << severity;
    if (f.kind != "unsynchronized-race")
        out << "[" << f.kind << "]";
    out << ":";
    if (!f.traversal.empty())
        out << " traversal '" << f.traversal << "',";
    if (!f.function.empty())
        out << " function '" << f.function << "',";
    if (!f.statement.empty())
        out << " " << f.statement << ":";
    out << " " << f.detail << "\n";
}

/** Pre-order statement ordinals, matching UdfEffects attribution. */
std::map<const Stmt *, int>
stmtOrdinals(const Function &func)
{
    std::map<const Stmt *, int> ordinals;
    int ordinal = 0;
    walkStmts(func.body, [&](const StmtPtr &stmt, const std::string &) {
        ordinals[stmt.get()] = ++ordinal;
    });
    return ordinals;
}

/** Key identifying a syntactic prop[index] target, or empty when the index
 *  shape cannot be proven equal across two statements. */
std::string
indexKey(const ExprPtr &index)
{
    if (!index)
        return {};
    if (index->kind == ExprKind::VarRef)
        return "v:" + static_cast<const VarRefExpr &>(*index).name;
    if (index->kind == ExprKind::IntConst)
        return "c:" + std::to_string(
                          static_cast<const IntConstExpr &>(*index).value);
    return {};
}

/**
 * Dead-write lint over one function: a top-level plain write to
 * prop[index] followed (still at top level, with no intervening control
 * flow, traversal, or read of the property) by another write to the same
 * syntactic target. Straight-line only — branches clear all pending
 * writes, so conditional re-initialization never triggers it.
 */
void
lintDeadWrites(const Function &func, std::vector<AnalyzeFinding> &lints)
{
    const auto ordinals = stmtOrdinals(func);
    struct Pending
    {
        const PropWriteStmt *stmt;
    };
    std::map<std::string, Pending> pending; // "prop|indexKey" -> first write

    for (const StmtPtr &stmt : func.body) {
        // Any read of a property discharges its pending writes.
        std::set<std::string> reads;
        stmtExprs(stmt, [&](const ExprPtr &top) {
            walkExprs(top, [&](const ExprPtr &expr) {
                if (expr->kind == ExprKind::PropRead)
                    reads.insert(
                        static_cast<const PropReadExpr &>(*expr).prop);
                else if (expr->kind == ExprKind::CompareAndSwap)
                    reads.insert(
                        static_cast<const CompareAndSwapExpr &>(*expr).prop);
            });
        });
        if (stmt->kind == StmtKind::Reduction)
            reads.insert(static_cast<const ReductionStmt &>(*stmt).prop);
        for (auto it = pending.begin(); it != pending.end();) {
            const std::string prop =
                it->first.substr(0, it->first.find('|'));
            it = reads.count(prop) ? pending.erase(it) : std::next(it);
        }

        if (stmt->kind != StmtKind::PropWrite) {
            // Control flow, loops, and traversals may read anything.
            if (stmt->kind == StmtKind::If || stmt->kind == StmtKind::While ||
                stmt->kind == StmtKind::ForRange ||
                stmt->kind == StmtKind::EdgeSetIterator ||
                stmt->kind == StmtKind::VertexSetIterator)
                pending.clear();
            continue;
        }

        const auto &write = static_cast<const PropWriteStmt &>(*stmt);
        const std::string key = indexKey(write.index);
        if (key.empty())
            continue;
        const std::string target = write.prop + "|" + key;
        auto it = pending.find(target);
        if (it != pending.end()) {
            AnalyzeFinding finding;
            finding.kind = "dead-write";
            finding.function = func.name;
            auto ord = ordinals.find(it->second.stmt);
            finding.statement =
                ord == ordinals.end()
                    ? std::string("PropWrite")
                    : "#" + std::to_string(ord->second) + " PropWrite";
            finding.property = write.prop;
            finding.detail = "write to '" + write.prop +
                             "' is overwritten before any read";
            lints.push_back(std::move(finding));
        }
        pending[target] = Pending{&write};
    }
}

} // namespace

std::string
AnalysisReport::toJson(const std::string &program_name) const
{
    std::ostringstream out;
    out << "{\n";
    out << "  \"schema\": \"ugc.analyze.v1\",\n";
    out << "  \"program\": \"" << jsonEscape(program_name) << "\",\n";
    out << "  \"summary\": {\"races\": " << races.size()
        << ", \"lints\": " << lints.size()
        << ", \"atomics_required\": " << atomicsRequired
        << ", \"atomics_elided\": " << atomicsElided << "},\n";
    out << "  \"races\": [\n";
    appendFindings(out, races);
    out << "  ],\n";
    out << "  \"lints\": [\n";
    appendFindings(out, lints);
    out << "  ]\n";
    out << "}\n";
    return out.str();
}

void
AnalysisReport::print(std::ostream &out,
                      const std::string &program_name) const
{
    out << "== analyze: " << program_name << " ==\n";
    for (const AnalyzeFinding &f : races)
        printFinding(out, "race", f);
    for (const AnalyzeFinding &f : lints)
        printFinding(out, "lint", f);
    out << "summary: " << races.size() << " race(s), " << lints.size()
        << " lint(s); atomics: " << atomicsRequired << " required, "
        << atomicsElided << " elided\n";
}

PassResult
RaceCheckPass::run(Program &program, AnalysisManager &analyses)
{
    const TraversalConflicts &conflicts =
        analyses.get<ConflictAnalysis>(program);

    AnalysisReport local;
    AnalysisReport &report = _options.report ? *_options.report : local;
    report = AnalysisReport{};

    // --- races + atomics summary (one entry per distinct site) -----------
    std::set<std::pair<std::string, std::size_t>> countedSites;
    for (const ConflictInfo &ci : conflicts.traversals) {
        for (const AccessVerdict &verdict : ci.verdicts) {
            const UdfEffects *fx = conflicts.effectsOf(verdict.function);
            if (!fx)
                continue;
            const AccessSite &site = fx->accesses[verdict.site];

            if (verdict.kind == ConflictKind::UnsynchronizedRace) {
                AnalyzeFinding finding;
                finding.kind = "unsynchronized-race";
                finding.function = verdict.function;
                finding.statement = site.where;
                finding.property = site.prop;
                finding.traversal = ci.path;
                finding.detail = verdict.reason;
                if (!ci.vertexApply)
                    finding.detail +=
                        " (" + directionName(ci.direction) + " traversal)";
                report.races.push_back(std::move(finding));
            }

            if (site.isRMW() &&
                countedSites.emplace(verdict.function, verdict.site)
                    .second) {
                const bool atomic =
                    site.stmt
                        ? site.stmt->getMetadataOr("is_atomic", false)
                        : site.expr &&
                              site.expr->getMetadataOr("is_atomic", false);
                if (atomic)
                    ++report.atomicsRequired;
                else
                    ++report.atomicsElided;
            }
        }
    }

    // --- lint scope: functions traversals invoke, plus main --------------
    std::set<std::string> scope;
    scope.insert("main");
    for (const ConflictInfo &ci : conflicts.traversals)
        for (const AccessVerdict &verdict : ci.verdicts)
            scope.insert(verdict.function);

    // Dead property writes (straight-line overwrites).
    for (const std::string &name : scope) {
        FunctionPtr func = program.findFunction(name);
        if (func)
            lintDeadWrites(*func, report.lints);
    }

    // Reductions outside any parallel region: a ReductionOp in main runs
    // serially — the reduction form suggests the author expected parallel
    // combining that never happens.
    if (const UdfEffects *mainFx = conflicts.effectsOf("main")) {
        for (const AccessSite &site : mainFx->accesses) {
            if (site.kind != AccessSite::Kind::Reduce)
                continue;
            AnalyzeFinding finding;
            finding.kind = "reduction-outside-parallel";
            finding.function = "main";
            finding.statement = site.where;
            finding.property = site.prop;
            finding.detail = "reduction into '" + site.prop +
                             "' executes serially in main";
            report.lints.push_back(std::move(finding));
        }
    }

    // Edge-traversal filters with side effects. (vertexset.filter UDFs may
    // legitimately mutate — PageRankDelta's do — so only the .to()/.from()
    // operators of edge traversals are held to purity.)
    for (const ConflictInfo &ci : conflicts.traversals) {
        if (!ci.edgeIter)
            continue;
        for (const std::string &filter :
             {ci.edgeIter->dstFilter, ci.edgeIter->srcFilter}) {
            if (filter.empty())
                continue;
            const UdfEffects *fx = conflicts.effectsOf(filter);
            if (fx && !fx->pure()) {
                AnalyzeFinding finding;
                finding.kind = "filter-side-effect";
                finding.function = filter;
                finding.traversal = ci.path;
                finding.detail = "filter '" + filter +
                                 "' has side effects; filters must be pure";
                report.lints.push_back(std::move(finding));
            }
        }
    }

    // Never-read properties: declared vertex data no reachable code reads
    // (reductions and CAS read their current value; a tracked property
    // feeds frontier creation, which is a read).
    std::set<std::string> referenced;
    for (const auto &[name, fx] : conflicts.effects) {
        (void)name;
        for (const AccessSite &site : fx.accesses)
            if (!site.isGlobal && site.kind != AccessSite::Kind::Write)
                referenced.insert(site.prop);
    }
    for (const FunctionPtr &func : program.functions()) {
        walkStmts(func->body, [&](const StmtPtr &stmt, const std::string &) {
            stmtExprs(stmt, [&](const ExprPtr &top) {
                walkExprs(top, [&](const ExprPtr &expr) {
                    if (expr->kind == ExprKind::VarRef)
                        referenced.insert(
                            static_cast<const VarRefExpr &>(*expr).name);
                });
            });
        });
    }
    for (const ConflictInfo &ci : conflicts.traversals)
        if (ci.edgeIter && !ci.edgeIter->trackedProp.empty())
            referenced.insert(ci.edgeIter->trackedProp);
    for (const auto &decl : program.globals) {
        if (decl->type.kind != TypeDesc::Kind::VertexData ||
            referenced.count(decl->name))
            continue;
        AnalyzeFinding finding;
        finding.kind = "never-read-property";
        finding.property = decl->name;
        finding.detail =
            "property '" + decl->name + "' is never read by any function";
        report.lints.push_back(std::move(finding));
    }

    if (_options.racesAreErrors && !report.races.empty()) {
        const AnalyzeFinding &first = report.races.front();
        return PassResult::error(
            std::to_string(report.races.size()) +
            " unsynchronized race(s); first: function '" + first.function +
            "' " + first.statement + ": " + first.detail);
    }
    return PassResult::unchanged();
}

} // namespace ugc::midend
