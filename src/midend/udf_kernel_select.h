/**
 * @file
 * udf-kernel-select: compiled-kernel selection for lowered UDFs.
 *
 * After direction lowering, atomics insertion, and ordered lowering have
 * produced the final per-variant UDFs, this pass compiles each edge
 * traversal's apply UDF to bytecode and pattern-matches it against the
 * compiled-kernel catalog (udf/registry.h). A match attaches
 * `udf_kernel = "<catalog name>"` metadata to the traversal statement;
 * backends whose machine model supports the compiled tier (currently the
 * CPU) use that as the green light to run the specialized kernel instead
 * of the bytecode interpreter. Traversals that do not match carry no
 * metadata and always interpret — fallback is the absence of a claim,
 * never an error.
 *
 * The matching itself lives in UdfKernelAnalysis so repeated pipeline
 * runs (verify-each, autotuning sweeps) reuse the cached result until a
 * pass invalidates it.
 */
#ifndef UGC_MIDEND_UDF_KERNEL_SELECT_H
#define UGC_MIDEND_UDF_KERNEL_SELECT_H

#include <string>
#include <vector>

#include "midend/analyses.h"
#include "midend/effects.h"
#include "midend/pass.h"

namespace ugc {

namespace midend {

/** Result of matching every edge traversal against the kernel catalog. */
struct UdfKernelInfo
{
    struct Entry
    {
        Stmt *stmt = nullptr;     ///< the EdgeSetIterator node
        std::string variant;      ///< resolved apply variant name
        std::string kernel;       ///< catalog kernel name
    };

    std::vector<Entry> matches;  ///< traversals with a recognized shape
    std::size_t traversals = 0;  ///< edge traversals inspected
};

struct UdfKernelAnalysis
{
    static const char *key() { return "udf-kernel-catalog"; }
    using Result = UdfKernelInfo;
    static Result run(Program &program);
};

} // namespace midend

class UdfKernelSelectPass : public Pass
{
  public:
    std::string name() const override { return "udf-kernel-select"; }
    PassResult run(Program &program, AnalysisManager &analyses) override;

    /** Metadata-only: statement structure is untouched. */
    PreservedAnalyses
    preservedAnalyses() const override
    {
        return PreservedAnalyses::none()
            .preserve(midend::TraversalIndexAnalysis::key())
            .preserve(midend::IRStatsAnalysis::key())
            .preserve(midend::UdfEffectsAnalysis::key())
            .preserve(midend::ConflictAnalysis::key())
            .preserve(midend::UdfKernelAnalysis::key());
    }
};

} // namespace ugc

#endif // UGC_MIDEND_UDF_KERNEL_SELECT_H
