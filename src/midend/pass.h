/**
 * @file
 * Pass interface of the hardware-independent compiler (§III-A).
 *
 * Passes are IR-to-IR transformations over GraphIR, LLVM-style; GraphVMs
 * append their own hardware-specific passes to the shared pipeline.
 */
#ifndef UGC_MIDEND_PASS_H
#define UGC_MIDEND_PASS_H

#include <memory>
#include <string>
#include <vector>

#include "ir/program.h"

namespace ugc {

class Pass
{
  public:
    virtual ~Pass() = default;

    /** Stable name used in diagnostics and pipeline dumps. */
    virtual std::string name() const = 0;

    /** Transform @p program in place. */
    virtual void run(Program &program) = 0;
};

using PassPtr = std::unique_ptr<Pass>;

/** Ordered list of passes applied to a program. */
class PassManager
{
  public:
    void addPass(PassPtr pass) { _passes.push_back(std::move(pass)); }

    void
    run(Program &program)
    {
        for (const PassPtr &pass : _passes)
            pass->run(program);
    }

    std::vector<std::string>
    passNames() const
    {
        std::vector<std::string> names;
        for (const PassPtr &pass : _passes)
            names.push_back(pass->name());
        return names;
    }

  private:
    std::vector<PassPtr> _passes;
};

} // namespace ugc

#endif // UGC_MIDEND_PASS_H
