/**
 * @file
 * Pass framework of the hardware-independent compiler (§III-A).
 *
 * Passes are IR-to-IR transformations over GraphIR, LLVM-style; GraphVMs
 * register their own hardware-specific passes into the shared pipeline.
 *
 * v2 framework (DESIGN.md §7):
 *  - Pass::run returns a PassResult (changed / unchanged / error with a
 *    diagnostic) instead of mutating silently.
 *  - An AnalysisManager caches analyses shared between passes
 *    (midend/analyses.h); passes declare which cached analyses survive
 *    their changes via preservedAnalyses(), and the manager invalidates
 *    the rest whenever a pass reports PassStatus::Changed.
 *  - PassInstrumentation hooks observe every pass execution; the built-in
 *    ProfInstrumentation records a "pass:<name>" prof scope with wall time
 *    and IR-size counters, and PrintIRInstrumentation dumps the IR after
 *    each pass (ugcc --print-after-all).
 *  - The manager can run the GraphIR verifier (ir/verifier.h) after every
 *    pass that changed the IR (ugcc --verify-ir).
 */
#ifndef UGC_MIDEND_PASS_H
#define UGC_MIDEND_PASS_H

#include <any>
#include <chrono>
#include <iosfwd>
#include <map>
#include <memory>
#include <set>
#include <stdexcept>
#include <string>
#include <vector>

#include "ir/program.h"

namespace ugc {

// --- pass results ---------------------------------------------------------

enum class PassStatus {
    Unchanged, ///< the pass ran and left the IR exactly as it found it
    Changed,   ///< the pass transformed the IR (or its metadata)
    Error,     ///< the pass failed; diagnostic explains why
};

/** What a pass did to the program. */
struct PassResult
{
    PassStatus status = PassStatus::Unchanged;
    std::string diagnostic; ///< non-empty for Error

    static PassResult unchanged() { return {PassStatus::Unchanged, {}}; }
    static PassResult changed() { return {PassStatus::Changed, {}}; }
    /** Changed iff @p did_change — for passes that count their edits. */
    static PassResult
    changedIf(bool did_change)
    {
        return did_change ? changed() : unchanged();
    }
    static PassResult
    error(std::string message)
    {
        return {PassStatus::Error, std::move(message)};
    }

    bool changedIR() const { return status == PassStatus::Changed; }
    bool failed() const { return status == PassStatus::Error; }
};

// --- analysis caching -----------------------------------------------------

/**
 * The set of cached analyses a pass keeps valid when it reports Changed.
 * (A pass reporting Unchanged implicitly preserves everything.)
 */
class PreservedAnalyses
{
  public:
    /** Every analysis survives (metadata-only passes that do not touch
     *  what any registered analysis computed). */
    static PreservedAnalyses
    all()
    {
        PreservedAnalyses preserved;
        preserved._all = true;
        return preserved;
    }

    /** No analysis survives (the conservative default). */
    static PreservedAnalyses none() { return {}; }

    PreservedAnalyses &
    preserve(std::string analysis_key)
    {
        _keys.insert(std::move(analysis_key));
        return *this;
    }

    bool isAllPreserved() const { return _all; }

    bool
    preserves(const std::string &analysis_key) const
    {
        return _all || _keys.count(analysis_key) != 0;
    }

  private:
    bool _all = false;
    std::set<std::string> _keys;
};

/**
 * Caches analysis results computed over a Program and shares them between
 * passes. An analysis is any type providing:
 *
 *   static const char *key();            // stable cache key
 *   using Result = ...;                  // the computed summary
 *   static Result run(Program &program); // compute from scratch
 *
 * Invalidation: after a pass reports Changed, the PassManager calls
 * invalidateAllExcept(pass.preservedAnalyses()); a pass that reports
 * Unchanged leaves the cache intact.
 */
class AnalysisManager
{
  public:
    struct Stats
    {
        int computes = 0;      ///< cache misses (analysis ran)
        int hits = 0;          ///< cache hits (result reused)
        int invalidations = 0; ///< cached results dropped
    };

    /** Result of @p AnalysisT over @p program, computing it on a miss.
     *  The reference stays valid until the analysis is invalidated. */
    template <typename AnalysisT>
    const typename AnalysisT::Result &
    get(Program &program)
    {
        using Result = typename AnalysisT::Result;
        auto it = _cache.find(AnalysisT::key());
        if (it != _cache.end()) {
            ++_stats.hits;
            return *std::static_pointer_cast<Result>(it->second);
        }
        ++_stats.computes;
        auto result = std::make_shared<Result>(AnalysisT::run(program));
        _cache[AnalysisT::key()] = result;
        return *result;
    }

    template <typename AnalysisT>
    bool
    isCached() const
    {
        return _cache.count(AnalysisT::key()) != 0;
    }

    void
    invalidateAllExcept(const PreservedAnalyses &preserved)
    {
        if (preserved.isAllPreserved())
            return;
        for (auto it = _cache.begin(); it != _cache.end();) {
            if (preserved.preserves(it->first)) {
                ++it;
            } else {
                ++_stats.invalidations;
                it = _cache.erase(it);
            }
        }
    }

    void
    clear()
    {
        _stats.invalidations += static_cast<int>(_cache.size());
        _cache.clear();
    }

    const Stats &stats() const { return _stats; }

  private:
    std::map<std::string, std::shared_ptr<void>> _cache;
    Stats _stats;
};

// --- passes ---------------------------------------------------------------

class Pass
{
  public:
    virtual ~Pass() = default;

    /** Stable name used in diagnostics, profiles, and pipeline dumps. */
    virtual std::string name() const = 0;

    /** Transform @p program in place, reporting what happened. Shared
     *  analyses are available through @p analyses. */
    virtual PassResult run(Program &program, AnalysisManager &analyses) = 0;

    /** Cached analyses that stay valid even when this pass reports
     *  Changed. Default: none (conservative). */
    virtual PreservedAnalyses
    preservedAnalyses() const
    {
        return PreservedAnalyses::none();
    }
};

using PassPtr = std::unique_ptr<Pass>;

// --- instrumentation ------------------------------------------------------

/**
 * Observes pass execution. beforePass hooks run in registration order,
 * afterPass hooks in reverse; the pair is always balanced, including when
 * the pass throws (the manager converts the exception to a PassResult
 * error first).
 */
class PassInstrumentation
{
  public:
    virtual ~PassInstrumentation() = default;

    virtual void
    beforePass(const Pass &pass, const Program &program)
    {
        (void)pass;
        (void)program;
    }

    virtual void
    afterPass(const Pass &pass, const Program &program,
              const PassResult &result)
    {
        (void)pass;
        (void)program;
        (void)result;
    }
};

/**
 * Records a "pass:<name>" scope in the active prof::Profile per executed
 * pass — host wall time plus IR-size counters (ir.functions,
 * ir.statements) and an ir.changed flag. No-op when no profile is active
 * (the usual zero-cost-when-off contract of ugc::prof).
 */
class ProfInstrumentation : public PassInstrumentation
{
  public:
    void beforePass(const Pass &pass, const Program &program) override;
    void afterPass(const Pass &pass, const Program &program,
                   const PassResult &result) override;

  private:
    /** Open-scope stack; pairs with afterPass even if a profile is
     *  (de)activated mid-pipeline. */
    std::vector<std::chrono::steady_clock::time_point> _starts;
    std::vector<bool> _entered;
};

/** Dumps the IR to a stream after every pass (ugcc --print-after-all). */
class PrintIRInstrumentation : public PassInstrumentation
{
  public:
    explicit PrintIRInstrumentation(std::ostream &out) : _out(out) {}

    void afterPass(const Pass &pass, const Program &program,
                   const PassResult &result) override;

  private:
    std::ostream &_out;
};

// --- the manager ----------------------------------------------------------

/** Outcome of running a pipeline. */
struct PipelineResult
{
    bool ok = true;
    std::string failedPass; ///< name of the pass that failed, if any
    std::string diagnostic; ///< why it failed

    explicit operator bool() const { return ok; }
};

/** Thrown by pipeline entry points that cannot return a PipelineResult;
 *  names the failing pass. */
class PipelineError : public std::runtime_error
{
  public:
    PipelineError(std::string pass_name, const std::string &diagnostic)
        : std::runtime_error("pass '" + pass_name + "' failed: " +
                             diagnostic),
          _passName(std::move(pass_name))
    {
    }

    const std::string &passName() const { return _passName; }

  private:
    std::string _passName;
};

/**
 * Ordered list of passes applied to a program — the one pipeline both the
 * hardware-independent midend and every GraphVM's hardware passes run in
 * (GraphVM::registerHardwarePasses).
 */
class PassManager
{
  public:
    void addPass(PassPtr pass) { _passes.push_back(std::move(pass)); }

    void
    addInstrumentation(std::unique_ptr<PassInstrumentation> instrumentation)
    {
        _instrumentations.push_back(std::move(instrumentation));
    }

    /** Run the GraphIR verifier after every pass that reports Changed;
     *  a verifier diagnostic fails the pipeline at that pass. */
    void setVerifyEach(bool on) { _verifyEach = on; }
    bool verifyEach() const { return _verifyEach; }

    /**
     * Run every pass in order. Stops at the first pass error (or verifier
     * diagnostic when verifyEach is on) and reports the failing pass by
     * name; exceptions escaping a pass are captured as that pass's error.
     */
    PipelineResult run(Program &program);

    std::vector<std::string>
    passNames() const
    {
        std::vector<std::string> names;
        for (const PassPtr &pass : _passes)
            names.push_back(pass->name());
        return names;
    }

    AnalysisManager &analyses() { return _analyses; }

  private:
    std::vector<PassPtr> _passes;
    std::vector<std::unique_ptr<PassInstrumentation>> _instrumentations;
    AnalysisManager _analyses;
    bool _verifyEach = false;
};

} // namespace ugc

#endif // UGC_MIDEND_PASS_H
