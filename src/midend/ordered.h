/**
 * @file
 * Ordered processing lowering (Table III): prepares priority-queue-driven
 * algorithms (Δ-stepping SSSP and friends) for the GraphVMs — resolves the
 * bucket width Δ from the schedule, annotates ordered traversals, and tags
 * the bucket-fusion opportunity when the schedule requests it.
 */
#ifndef UGC_MIDEND_ORDERED_H
#define UGC_MIDEND_ORDERED_H

#include "midend/analyses.h"
#include "midend/effects.h"
#include "midend/pass.h"

namespace ugc {

class OrderedLoweringPass : public Pass
{
  public:
    std::string name() const override { return "ordered-lowering"; }
    PassResult run(Program &program, AnalysisManager &analyses) override;

    /** Metadata-only: statement structure is untouched. */
    PreservedAnalyses
    preservedAnalyses() const override
    {
        return PreservedAnalyses::none()
            .preserve(midend::TraversalIndexAnalysis::key())
            .preserve(midend::IRStatsAnalysis::key())
            .preserve(midend::UdfEffectsAnalysis::key())
            .preserve(midend::ConflictAnalysis::key());
    }
};

} // namespace ugc

#endif // UGC_MIDEND_ORDERED_H
