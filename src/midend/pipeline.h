/**
 * @file
 * The standard hardware-independent pipeline (§III-A): the passes every
 * GraphVM runs before its own hardware-specific passes.
 */
#ifndef UGC_MIDEND_PIPELINE_H
#define UGC_MIDEND_PIPELINE_H

#include "midend/pass.h"
#include "midend/race_check.h"
#include "sched/schedule.h"

namespace ugc::midend {

/**
 * Append the standard hardware-independent passes to @p manager.
 * GraphVMs call this first, then append their own hardware passes, so one
 * PassManager runs the whole pipeline with shared analyses and
 * instrumentation.
 * @param default_schedule schedule used for unscheduled statements
 *        (each GraphVM passes its baseline schedule here)
 * @param analyze race-check reporting options (ugcc --analyze)
 */
void registerStandardPasses(PassManager &manager,
                            SchedulePtr default_schedule,
                            const AnalyzeOptions &analyze = {});

/**
 * Build the standard pipeline.
 * @param default_schedule schedule used for unscheduled statements
 *        (each GraphVM passes its baseline schedule here)
 */
PassManager standardPipeline(SchedulePtr default_schedule);

/**
 * Clone @p program and run the standard pipeline over the clone.
 * @throws PipelineError naming the failing pass if any pass reports an
 *         error.
 */
ProgramPtr runStandardPipeline(const Program &program,
                               SchedulePtr default_schedule);

} // namespace ugc::midend

#endif // UGC_MIDEND_PIPELINE_H
