/**
 * @file
 * Frontier reuse analysis (Table III).
 *
 * Liveness over frontier variables: when a loop body ends by deleting the
 * input frontier and replacing it with the traversal's output
 * (`delete frontier; frontier = output;`), the input frontier's storage can
 * be recycled for the output. The result is recorded as
 * can_reuse_frontier metadata on the EdgeSetIterator (used by the GPU,
 * Swarm, and HammerBlade GraphVMs; the CPU GraphVM does not use it).
 */
#ifndef UGC_MIDEND_FRONTIER_REUSE_H
#define UGC_MIDEND_FRONTIER_REUSE_H

#include "midend/analyses.h"
#include "midend/effects.h"
#include "midend/pass.h"

namespace ugc {

class FrontierReusePass : public Pass
{
  public:
    std::string name() const override { return "frontier-reuse"; }
    PassResult run(Program &program, AnalysisManager &analyses) override;

    /** Metadata-only: statement structure is untouched. */
    PreservedAnalyses
    preservedAnalyses() const override
    {
        return PreservedAnalyses::none()
            .preserve(midend::TraversalIndexAnalysis::key())
            .preserve(midend::IRStatsAnalysis::key())
            .preserve(midend::UdfEffectsAnalysis::key())
            .preserve(midend::ConflictAnalysis::key());
    }
};

} // namespace ugc

#endif // UGC_MIDEND_FRONTIER_REUSE_H
