/**
 * @file
 * Direction lowering and schedule attachment.
 *
 * For every EdgeSetIterator this pass:
 *  1. resolves the schedule attached to its label (or the pipeline default)
 *     and stores it in the node's metadata;
 *  2. expands CompositeSchedule into the Fig 7 runtime if-then-else, with a
 *     cloned EdgeSetIterator per branch;
 *  3. creates a direction-specific UDF variant, rewriting applyModified
 *     tracking into explicit CompareAndSwap / tracked reductions followed
 *     by EnqueueVertex (the Fig 4 lowering), fusing an equality destination
 *     filter into the CAS when possible;
 *  4. records direction, frontier representations, and dedup metadata for
 *     the GraphVMs.
 */
#ifndef UGC_MIDEND_DIRECTION_LOWERING_H
#define UGC_MIDEND_DIRECTION_LOWERING_H

#include "midend/pass.h"
#include "sched/schedule.h"

namespace ugc {

class DirectionLoweringPass : public Pass
{
  public:
    /** @param default_schedule used for statements without a schedule. */
    explicit DirectionLoweringPass(SchedulePtr default_schedule)
        : _defaultSchedule(std::move(default_schedule))
    {
    }

    std::string name() const override { return "direction-lowering"; }
    PassResult run(Program &program, AnalysisManager &analyses) override;
    // Replaces statements and creates UDF variants: nothing survives.

  private:
    SchedulePtr _defaultSchedule;
};

} // namespace ugc

#endif // UGC_MIDEND_DIRECTION_LOWERING_H
