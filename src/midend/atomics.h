/**
 * @file
 * Property analysis / atomics insertion (Table III's
 * "Property Analysis/Atomic Insertion" pass).
 *
 * Dependence analysis over UDFs: a CompareAndSwap or ReductionOp inside an
 * edge-apply UDF needs atomicity exactly when multiple parallel workers can
 * target the same vertex — i.e. PUSH traversals (many sources share one
 * destination). PULL traversals own their destination exclusively, and
 * vertex-apply UDFs own their vertex, so their updates stay plain.
 */
#ifndef UGC_MIDEND_ATOMICS_H
#define UGC_MIDEND_ATOMICS_H

#include "midend/analyses.h"
#include "midend/pass.h"

namespace ugc {

class AtomicsInsertionPass : public Pass
{
  public:
    std::string name() const override { return "atomics-insertion"; }
    PassResult run(Program &program, AnalysisManager &analyses) override;

    /** Metadata-only: statement structure is untouched, so the cached
     *  traversal index and IR statistics stay valid. */
    PreservedAnalyses
    preservedAnalyses() const override
    {
        return PreservedAnalyses::none()
            .preserve(midend::TraversalIndexAnalysis::key())
            .preserve(midend::IRStatsAnalysis::key());
    }
};

} // namespace ugc

#endif // UGC_MIDEND_ATOMICS_H
