/**
 * @file
 * Property analysis / atomics insertion (Table III's
 * "Property Analysis/Atomic Insertion" pass).
 *
 * Effects-driven dependence analysis (DESIGN.md §10): the pass consumes
 * ConflictAnalysis — per-UDF property read/write/reduce summaries combined
 * with each traversal's direction, deduplication, ordering, and
 * parallelism — and marks exactly the RMW sites whose verdict is
 * ReducibleConflict as is_atomic=true; every other reduction, CAS, and
 * priority update in a traversal-invoked UDF is explicitly marked
 * is_atomic=false so backends can elide the synchronization (pull-mode
 * dst-indexed updates, worker-private source-side writes, serial vertex
 * applies). It also exports each traversal's static property read/write
 * sets as "effects_reads"/"effects_writes" metadata — the single source of
 * truth the Swarm VM's conflict detector and spatial-hint machinery
 * consume.
 */
#ifndef UGC_MIDEND_ATOMICS_H
#define UGC_MIDEND_ATOMICS_H

#include "midend/analyses.h"
#include "midend/effects.h"
#include "midend/pass.h"

namespace ugc {

class AtomicsInsertionPass : public Pass
{
  public:
    std::string name() const override { return "atomics-insertion"; }
    PassResult run(Program &program, AnalysisManager &analyses) override;

    /** Metadata-only: statement structure is untouched, so the cached
     *  traversal index, effect summaries, conflict verdicts, and IR
     *  statistics stay valid. */
    PreservedAnalyses
    preservedAnalyses() const override
    {
        return PreservedAnalyses::none()
            .preserve(midend::TraversalIndexAnalysis::key())
            .preserve(midend::IRStatsAnalysis::key())
            .preserve(midend::UdfEffectsAnalysis::key())
            .preserve(midend::ConflictAnalysis::key());
    }
};

} // namespace ugc

#endif // UGC_MIDEND_ATOMICS_H
