/**
 * @file
 * Static race checker and analysis reporting (DESIGN.md §10, `ugcc
 * --analyze`).
 *
 * The race-check pass runs right after atomics insertion, consumes the
 * same ConflictAnalysis, and turns its verdicts into user-facing
 * diagnostics:
 *
 *  - races: every UnsynchronizedRace verdict (a plain write to a shared
 *    property or global from a parallel traversal), with function and
 *    statement attribution;
 *  - lints: dead property writes (a write overwritten before any read),
 *    never-read properties, reductions outside any parallel region, and
 *    edge-traversal filters with side effects.
 *
 * By default the pass only reports (through an optional AnalysisReport
 * sink) and never fails the pipeline. With racesAreErrors (ugcc --analyze
 * --Werror) any race fails the pipeline, which surfaces through the
 * standard PipelineError path as the verify-failure exit code.
 */
#ifndef UGC_MIDEND_RACE_CHECK_H
#define UGC_MIDEND_RACE_CHECK_H

#include <iosfwd>
#include <string>
#include <vector>

#include "midend/effects.h"
#include "midend/pass.h"

namespace ugc::midend {

/** One analysis diagnostic (a race or a lint). */
struct AnalyzeFinding
{
    std::string kind;      ///< "unsynchronized-race", "dead-write", ...
    std::string function;  ///< function the finding is attributed to
    std::string statement; ///< statement attribution ("#2 PropWrite")
    std::string property;  ///< property / global / queue involved
    std::string traversal; ///< schedule label path, empty if none
    std::string detail;    ///< human-readable explanation
};

/** Everything `ugcc --analyze` reports; stable across runs. */
struct AnalysisReport
{
    std::vector<AnalyzeFinding> races;
    std::vector<AnalyzeFinding> lints;
    int atomicsRequired = 0; ///< RMW sites marked is_atomic=true
    int atomicsElided = 0;   ///< RMW sites proven conflict-free

    bool clean() const { return races.empty() && lints.empty(); }

    /** Stable machine-readable form (schema "ugc.analyze.v1"). */
    std::string toJson(const std::string &program_name) const;
    /** Human-readable report. */
    void print(std::ostream &out, const std::string &program_name) const;
};

/** How the race-check pass reports (wired from ugcc --analyze). */
struct AnalyzeOptions
{
    AnalysisReport *report = nullptr; ///< filled when non-null
    bool racesAreErrors = false;      ///< --Werror: races fail the pipeline
};

class RaceCheckPass : public Pass
{
  public:
    explicit RaceCheckPass(AnalyzeOptions options = {}) : _options(options) {}

    std::string name() const override { return "race-check"; }
    PassResult run(Program &program, AnalysisManager &analyses) override;

    /** Pure analysis: the IR is never touched. */
    PreservedAnalyses
    preservedAnalyses() const override
    {
        return PreservedAnalyses::all();
    }

  private:
    AnalyzeOptions _options;
};

} // namespace ugc::midend

#endif // UGC_MIDEND_RACE_CHECK_H
