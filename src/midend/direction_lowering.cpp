#include "midend/direction_lowering.h"

#include <stdexcept>

#include "ir/walk.h"

namespace ugc {

namespace {

/** Evaluate an integer constant expression (literals and unary minus). */
bool
constIntOf(const Expr *expr, int64_t *out)
{
    if (expr->kind == ExprKind::IntConst) {
        *out = static_cast<const IntConstExpr &>(*expr).value;
        return true;
    }
    if (expr->kind == ExprKind::Unary) {
        const auto &node = static_cast<const UnaryExpr &>(*expr);
        int64_t inner;
        if (node.op == UnaryOp::Neg &&
            constIntOf(node.operand.get(), &inner)) {
            *out = -inner;
            return true;
        }
    }
    return false;
}

/**
 * If @p filter is `output = (prop[v] == K)` for the tracked property,
 * return K so the filter can be fused into a CompareAndSwap.
 */
bool
matchEqFilter(const Function &filter, const std::string &tracked_prop,
              int64_t *out_const)
{
    if (filter.body.size() != 1 || filter.params.size() != 1)
        return false;
    const StmtPtr &stmt = filter.body[0];
    if (stmt->kind != StmtKind::Assign)
        return false;
    const auto &assign = static_cast<const AssignStmt &>(*stmt);
    if (assign.name != filter.resultName)
        return false;
    const Expr *expr = assign.value.get();
    if (expr->kind != ExprKind::Binary)
        return false;
    const auto &cmp = static_cast<const BinaryExpr &>(*expr);
    if (cmp.op != BinaryOp::Eq)
        return false;

    const Expr *prop_side = cmp.lhs.get();
    const Expr *const_side = cmp.rhs.get();
    if (prop_side->kind != ExprKind::PropRead)
        std::swap(prop_side, const_side);
    int64_t value;
    if (prop_side->kind != ExprKind::PropRead ||
        !constIntOf(const_side, &value))
        return false;

    const auto &read = static_cast<const PropReadExpr &>(*prop_side);
    if (read.prop != tracked_prop ||
        read.index->kind != ExprKind::VarRef ||
        static_cast<const VarRefExpr &>(*read.index).name !=
            filter.params[0].name) {
        return false;
    }
    *out_const = value;
    return true;
}

/**
 * Rewrite the body of an applyModified UDF so that tracked-property updates
 * explicitly enqueue the destination (Fig 4).
 */
class TrackingRewriter
{
  public:
    TrackingRewriter(const std::string &tracked_prop,
                     const std::string &dst_param,
                     const std::string &output_set, bool fuse_filter,
                     int64_t filter_const)
        : _trackedProp(tracked_prop), _dstParam(dst_param),
          _outputSet(output_set), _fuseFilter(fuse_filter),
          _filterConst(filter_const)
    {
    }

    int rewrites() const { return _rewrites; }

    std::vector<StmtPtr>
    rewriteBody(const std::vector<StmtPtr> &body)
    {
        std::vector<StmtPtr> out;
        for (const StmtPtr &stmt : body) {
            switch (stmt->kind) {
              case StmtKind::PropWrite: {
                const auto &write = static_cast<const PropWriteStmt &>(*stmt);
                if (write.prop == _trackedProp) {
                    rewriteWrite(write, out);
                    continue;
                }
                out.push_back(stmt);
                break;
              }
              case StmtKind::Reduction: {
                const auto &reduce =
                    static_cast<const ReductionStmt &>(*stmt);
                if (reduce.prop == _trackedProp) {
                    rewriteReduction(reduce, out);
                    continue;
                }
                out.push_back(stmt);
                break;
              }
              case StmtKind::If: {
                const auto &branch = static_cast<const IfStmt &>(*stmt);
                auto copy = std::make_shared<IfStmt>(
                    cloneExpr(branch.cond), rewriteBody(branch.thenBody),
                    rewriteBody(branch.elseBody));
                copy->label = stmt->label;
                out.push_back(copy);
                break;
              }
              default:
                out.push_back(stmt);
                break;
            }
        }
        return out;
    }

  private:
    std::string
    freshVar()
    {
        return "enqueue" + (_counter ? std::to_string(_counter++)
                                     : (++_counter, std::string()));
    }

    void
    rewriteWrite(const PropWriteStmt &write, std::vector<StmtPtr> &out)
    {
        ++_rewrites;
        if (_fuseFilter) {
            // bool enqueue = CAS(prop[idx], K, value); if (enqueue) ...
            auto cas = std::make_shared<CompareAndSwapExpr>(
                _trackedProp, cloneExpr(write.index),
                intConst(_filterConst), cloneExpr(write.value));
            const std::string var = freshVar();
            out.push_back(std::make_shared<VarDeclStmt>(
                var, TypeDesc::scalar(ElemType::Bool), cas));
            out.push_back(std::make_shared<IfStmt>(
                varRef(var),
                std::vector<StmtPtr>{std::make_shared<EnqueueVertexStmt>(
                    _outputSet, cloneExpr(write.index))}));
            return;
        }
        // No fusable filter: plain write, unconditional enqueue.
        out.push_back(std::make_shared<PropWriteStmt>(
            write.prop, cloneExpr(write.index), cloneExpr(write.value)));
        out.push_back(std::make_shared<EnqueueVertexStmt>(
            _outputSet, cloneExpr(write.index)));
    }

    void
    rewriteReduction(const ReductionStmt &reduce, std::vector<StmtPtr> &out)
    {
        ++_rewrites;
        auto copy = std::make_shared<ReductionStmt>(
            reduce.prop, cloneExpr(reduce.index), reduce.op,
            cloneExpr(reduce.value));
        const std::string var = freshVar();
        copy->resultVar = var;
        out.push_back(copy);
        out.push_back(std::make_shared<IfStmt>(
            varRef(var),
            std::vector<StmtPtr>{std::make_shared<EnqueueVertexStmt>(
                _outputSet, cloneExpr(reduce.index))}));
    }

    const std::string &_trackedProp;
    const std::string &_dstParam;
    const std::string &_outputSet;
    bool _fuseFilter;
    int64_t _filterConst;
    int _rewrites = 0;
    int _counter = 0;
};

class Lowering
{
  public:
    Lowering(Program &program, SchedulePtr default_schedule)
        : _program(program), _defaultSchedule(std::move(default_schedule))
    {
    }

    /** @return number of traversal statements lowered. */
    int
    run()
    {
        FunctionPtr main = _program.mainFunction();
        if (!main)
            return 0;
        lowerBody(main->body, "");
        return _lowered;
    }

  private:
    /** Resolve the simple schedule for a statement path (never null). */
    std::shared_ptr<SimpleSchedule>
    simpleScheduleFor(const SchedulePtr &schedule)
    {
        auto simple = std::dynamic_pointer_cast<SimpleSchedule>(schedule);
        if (simple)
            return simple;
        return std::make_shared<SimpleSchedule>();
    }

    void
    lowerBody(std::vector<StmtPtr> &body, const std::string &path)
    {
        for (size_t i = 0; i < body.size(); ++i) {
            StmtPtr &stmt = body[i];
            std::string stmt_path = path;
            if (!stmt->label.empty()) {
                if (!stmt_path.empty())
                    stmt_path += ':';
                stmt_path += stmt->label;
            }
            switch (stmt->kind) {
              case StmtKind::While:
                lowerBody(static_cast<WhileStmt &>(*stmt).body, stmt_path);
                break;
              case StmtKind::ForRange:
                lowerBody(static_cast<ForRangeStmt &>(*stmt).body,
                          stmt_path);
                break;
              case StmtKind::If: {
                auto &branch = static_cast<IfStmt &>(*stmt);
                lowerBody(branch.thenBody, stmt_path);
                lowerBody(branch.elseBody, stmt_path);
                break;
              }
              case StmtKind::EdgeSetIterator:
                stmt = lowerEdgeTraversal(
                    std::static_pointer_cast<EdgeSetIteratorStmt>(stmt),
                    stmt_path);
                ++_lowered;
                break;
              case StmtKind::VertexSetIterator:
                stmt->setMetadata("is_parallel", true);
                ++_lowered;
                break;
              default:
                break;
            }
        }
    }

    /** Lower one EdgeSetIterator; may return a hybrid IfStmt (Fig 7). */
    StmtPtr
    lowerEdgeTraversal(std::shared_ptr<EdgeSetIteratorStmt> stmt,
                       const std::string &path)
    {
        SchedulePtr schedule = _program.scheduleFor(path);
        const bool explicit_schedule = schedule != nullptr;
        if (!schedule)
            schedule = _defaultSchedule;
        stmt->setMetadata("has_explicit_schedule", explicit_schedule);

        // Ordered (priority-queue) traversals are push-only: the ordered
        // runtime relaxes out-edges of the ready set. Collapse hybrid and
        // pull schedules onto their push configuration.
        if (stmt->getMetadataOr("ordered", false)) {
            auto simple =
                std::dynamic_pointer_cast<SimpleSchedule>(schedule);
            if (auto composite =
                    std::dynamic_pointer_cast<CompositeSchedule>(schedule))
                simple = std::dynamic_pointer_cast<SimpleSchedule>(
                    composite->getFirstSchedule());
            if (!simple)
                simple = std::make_shared<SimpleSchedule>();
            if (simple->getDirection() != Direction::Push ||
                simple->isHybridDirection()) {
                simple = std::make_shared<DirectionOverrideSchedule>(
                    simple, Direction::Push);
            }
            applySimple(*stmt, simple);
            return stmt;
        }

        // HYBRID direction sugar expands to a composite with the standard
        // direction-optimizing threshold.
        if (auto simple = std::dynamic_pointer_cast<SimpleSchedule>(schedule);
            simple && simple->isHybridDirection()) {
            return expandHybridDirection(std::move(stmt), simple);
        }

        if (auto composite =
                std::dynamic_pointer_cast<CompositeSchedule>(schedule)) {
            return expandComposite(std::move(stmt), *composite);
        }

        applySimple(*stmt, simpleScheduleFor(schedule));
        return stmt;
    }

    StmtPtr
    expandComposite(std::shared_ptr<EdgeSetIteratorStmt> stmt,
                    const CompositeSchedule &composite)
    {
        auto then_stmt = std::static_pointer_cast<EdgeSetIteratorStmt>(
            cloneStmt(stmt));
        auto else_stmt = std::static_pointer_cast<EdgeSetIteratorStmt>(
            cloneStmt(stmt));
        then_stmt->label.clear();
        else_stmt->label.clear();
        applySimple(*then_stmt,
                    simpleScheduleFor(composite.getFirstSchedule()));
        applySimple(*else_stmt,
                    simpleScheduleFor(composite.getSecondSchedule()));

        // Runtime condition: |frontier| (or its out-degree sum) below a
        // fraction of the graph (Fig 7).
        auto cond = std::make_shared<CallExpr>(
            "__hybrid_cond",
            std::vector<ExprPtr>{
                varRef(stmt->inputSet.empty() ? std::string("__all")
                                              : stmt->inputSet),
                floatConst(composite.getThreshold()),
                intConst(static_cast<int64_t>(composite.getCriteria()))});
        auto hybrid = std::make_shared<IfStmt>(
            cond, std::vector<StmtPtr>{then_stmt},
            std::vector<StmtPtr>{else_stmt});
        hybrid->label = stmt->label;
        hybrid->setMetadata("hybrid_direction", true);
        return hybrid;
    }

    StmtPtr
    expandHybridDirection(std::shared_ptr<EdgeSetIteratorStmt> stmt,
                          const std::shared_ptr<SimpleSchedule> &base)
    {
        // Build an equivalent composite: PUSH when the frontier is small,
        // PULL when it is dense.
        CompositeSchedule composite(
            HybridCriteria::InputSetSize, 0.15,
            std::make_shared<DirectionOverrideSchedule>(base,
                                                        Direction::Push),
            std::make_shared<DirectionOverrideSchedule>(base,
                                                        Direction::Pull));
        return expandComposite(std::move(stmt), composite);
    }

    /** Attach a simple schedule and create the direction variant UDF. */
    void
    applySimple(EdgeSetIteratorStmt &stmt,
                const std::shared_ptr<SimpleSchedule> &schedule)
    {
        const Direction direction = schedule->getDirection();
        stmt.setMetadata("schedule",
                         std::static_pointer_cast<AbstractSchedule>(
                             schedule));
        stmt.setMetadata("direction", direction);
        stmt.setMetadata("pull_input_frontier",
                         schedule->getPullFrontier());
        stmt.setMetadata(
            "is_edge_parallel",
            schedule->getParallelization() == Parallelization::EdgeBased);
        if (!stmt.hasMetadata("apply_deduplication"))
            stmt.setMetadata("apply_deduplication",
                             schedule->getDeduplication());

        FunctionPtr apply = _program.findFunction(stmt.applyFunc);
        if (!apply) {
            throw std::runtime_error("direction lowering: missing UDF " +
                                     stmt.applyFunc);
        }

        FunctionPtr variant;
        if (stmt.trackChanges && !stmt.trackedProp.empty())
            variant = makeTrackedVariant(stmt, *apply, direction);
        else
            variant = makeUntrackedVariant(stmt, *apply, direction);
        stmt.setMetadata("apply_variant", variant->name);
    }

    FunctionPtr
    makeTrackedVariant(EdgeSetIteratorStmt &stmt, const Function &apply,
                       Direction direction)
    {
        // An equality destination filter on the tracked property can be
        // fused into a CAS — but only for PUSH, where concurrent sources
        // race on the destination. PULL keeps the filter as a cheap
        // pre-check on the destination and may stop scanning in-neighbors
        // after the first hit (the classic pull-BFS early exit).
        bool fuse_possible = false;
        int64_t filter_const = 0;
        if (!stmt.dstFilter.empty()) {
            FunctionPtr filter = _program.findFunction(stmt.dstFilter);
            if (filter &&
                matchEqFilter(*filter, stmt.trackedProp, &filter_const))
                fuse_possible = true;
        }
        const bool fuse = fuse_possible && direction == Direction::Push;

        if (fuse)
            stmt.setMetadata("filter_fused", true);
        if (fuse_possible && direction == Direction::Pull)
            stmt.setMetadata("pull_early_exit", true);

        FunctionPtr variant = apply.clone();
        variant->name = variantName(apply.name, stmt, direction);
        if (FunctionPtr existing = _program.findFunction(variant->name))
            return existing;

        const std::string &dst_param = apply.params.size() > 1
                                           ? apply.params[1].name
                                           : apply.params[0].name;
        const std::string output =
            stmt.outputSet.empty() ? "__output" : stmt.outputSet;
        TrackingRewriter rewriter(stmt.trackedProp, dst_param, output, fuse,
                                  filter_const);
        variant->body = rewriter.rewriteBody(variant->body);
        if (rewriter.rewrites() == 0) {
            throw std::runtime_error(
                "applyModified: UDF " + apply.name +
                " never updates tracked property " + stmt.trackedProp);
        }
        variant->setMetadata("direction", direction);
        _program.addFunction(variant);
        return variant;
    }

    FunctionPtr
    makeUntrackedVariant(EdgeSetIteratorStmt &stmt, const Function &apply,
                         Direction direction)
    {
        FunctionPtr variant = apply.clone();
        variant->name = variantName(apply.name, stmt, direction);
        if (FunctionPtr existing = _program.findFunction(variant->name))
            return existing;
        variant->setMetadata("direction", direction);
        _program.addFunction(variant);
        return variant;
    }

    static std::string
    variantName(const std::string &base, const EdgeSetIteratorStmt &stmt,
                Direction direction)
    {
        std::string name = base;
        name += direction == Direction::Push ? "_push" : "_pull";
        if (stmt.trackChanges)
            name += "_tracked";
        return name;
    }

    Program &_program;
    SchedulePtr _defaultSchedule;
    int _lowered = 0;
};

} // namespace

PassResult
DirectionLoweringPass::run(Program &program, AnalysisManager &analyses)
{
    (void)analyses;
    return PassResult::changedIf(Lowering(program, _defaultSchedule).run() >
                                 0);
}

} // namespace ugc
