#include "midend/frontier_reuse.h"

#include "ir/walk.h"

namespace ugc {

namespace {

/** Collect every EdgeSetIterator in @p body (including hybrid branches). */
void
collectIterators(const std::vector<StmtPtr> &body,
                 std::vector<EdgeSetIteratorStmt *> &out)
{
    walkStmts(body, [&](const StmtPtr &stmt, const std::string &) {
        if (stmt->kind == StmtKind::EdgeSetIterator)
            out.push_back(static_cast<EdgeSetIteratorStmt *>(stmt.get()));
    });
}

int
analyzeLoop(WhileStmt &loop)
{
    // Look for the `delete X; X = Y;` (or `X = Y; delete ...`) idiom where
    // some traversal in the loop reads X and writes Y.
    std::vector<EdgeSetIteratorStmt *> iterators;
    collectIterators(loop.body, iterators);
    if (iterators.empty())
        return 0;

    int marked = 0;
    for (size_t i = 0; i < loop.body.size(); ++i) {
        if (loop.body[i]->kind != StmtKind::Delete)
            continue;
        const auto &del = static_cast<const DeleteStmt &>(*loop.body[i]);
        for (size_t j = i + 1; j < loop.body.size(); ++j) {
            if (loop.body[j]->kind != StmtKind::Assign)
                continue;
            const auto &assign =
                static_cast<const AssignStmt &>(*loop.body[j]);
            if (assign.name != del.name ||
                assign.value->kind != ExprKind::VarRef)
                continue;
            const std::string &source =
                static_cast<const VarRefExpr &>(*assign.value).name;
            for (EdgeSetIteratorStmt *iter : iterators) {
                if (iter->inputSet == del.name &&
                    iter->outputSet == source) {
                    iter->setMetadata("can_reuse_frontier", true);
                    ++marked;
                }
            }
        }
    }
    return marked;
}

} // namespace

PassResult
FrontierReusePass::run(Program &program, AnalysisManager &analyses)
{
    (void)analyses;
    FunctionPtr main = program.mainFunction();
    if (!main)
        return PassResult::unchanged();
    int marked = 0;
    walkStmts(main->body, [&](const StmtPtr &stmt, const std::string &) {
        if (stmt->kind == StmtKind::While)
            marked += analyzeLoop(static_cast<WhileStmt &>(*stmt));
    });
    return PassResult::changedIf(marked > 0);
}

} // namespace ugc
