/**
 * @file
 * Property-effects dataflow analysis (DESIGN.md §10).
 *
 * Two cached analyses over GraphIR:
 *
 *  - UdfEffectsAnalysis abstract-interprets every function body into a
 *    per-function summary of its side effects: which vertex properties it
 *    reads, writes, reduces, or CASes — classified by *whose* vertex the
 *    access is indexed with (the UDF's src parameter, its dst parameter,
 *    the single self parameter, or something else) — plus the scalar
 *    globals it touches, the priority queues it updates, and whether it
 *    enqueues. This mirrors the symbolic bytecode executor of
 *    udf/registry.cpp, but at GraphIR level and for *all* functions, not
 *    just kernel-matchable ones.
 *
 *  - ConflictAnalysis combines those summaries with each traversal's
 *    direction, deduplication, ordering, and parallelism metadata to give
 *    every access site a verdict: NoConflict (the index is private to the
 *    worker that runs the UDF invocation), ReducibleConflict (shared index
 *    but the access is an atomic-capable RMW — reduction, CAS, or priority
 *    update), or UnsynchronizedRace (a plain write to a shared location).
 *
 * The atomics-insertion pass marks exactly the ReducibleConflict sites
 * atomic; the race-check pass and `ugcc --analyze` report the
 * UnsynchronizedRace sites (plus lints) to the user.
 */
#ifndef UGC_MIDEND_EFFECTS_H
#define UGC_MIDEND_EFFECTS_H

#include <cstddef>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "ir/program.h"

namespace ugc::midend {

/** Whose vertex a property access is indexed with, relative to the UDF's
 *  parameter list: edge UDFs bind (src, dst), vertex UDFs bind (self). */
enum class AccessIndex {
    Src,   ///< indexed by the edge UDF's first (source) parameter
    Dst,   ///< indexed by the edge UDF's second (destination) parameter
    Self,  ///< indexed by a single-parameter (vertex) UDF's parameter
    Other, ///< constant, local, or computed index — conservatively shared
};

const char *accessIndexName(AccessIndex index);

/** What the traversal context makes of one access site. */
enum class ConflictKind {
    NoConflict,          ///< private index, or a read
    ReducibleConflict,   ///< shared RMW — needs (and can use) an atomic
    UnsynchronizedRace,  ///< plain write to a shared location
};

const char *conflictKindName(ConflictKind kind);

/**
 * One syntactic access site inside a function body, in program (pre-order)
 * order. The stmt/expr pointers address the IR node the atomics pass marks
 * and stay valid as long as the analyzed Program's statements do (any pass
 * that replaces statements must invalidate this analysis).
 */
struct AccessSite
{
    enum class Kind {
        Read,           ///< PropRead expression
        Write,          ///< plain PropWrite (or scalar-global Assign)
        Reduce,         ///< ReductionOp (+=, min=, max=)
        Cas,            ///< CompareAndSwap expression
        PriorityUpdate, ///< UpdatePriorityMin/Sum into a queue
    };

    Kind kind = Kind::Read;
    std::string prop;     ///< property name; global or queue name for those
    AccessIndex index = AccessIndex::Other;
    bool isGlobal = false; ///< scalar-global access, not a vertex property
    ReductionType reductionOp = ReductionType::Sum; ///< for Kind::Reduce
    std::string where;    ///< attribution, e.g. "#2 ReductionOp"
    Stmt *stmt = nullptr; ///< Write/Reduce/PriorityUpdate site
    Expr *expr = nullptr; ///< Read/Cas site

    bool
    isRMW() const
    {
        return kind == Kind::Reduce || kind == Kind::Cas ||
               kind == Kind::PriorityUpdate;
    }
};

const char *accessKindName(AccessSite::Kind kind);

/** Side-effect summary of one function body. */
struct UdfEffects
{
    std::string function;
    std::vector<AccessSite> accesses; ///< pre-order program order
    std::set<std::string> globalsRead;
    std::set<std::string> globalsWritten;
    bool hasEnqueue = false;
    bool updatesPriority = false;

    /** True when the function only reads — safe as a filter. */
    bool pure() const;
    /** Vertex properties read (including the read half of RMWs). */
    std::set<std::string> propsRead() const;
    /** Vertex properties written (plain writes and RMWs). */
    std::set<std::string> propsWritten() const;
};

/** Cached per-function effect summaries, keyed by function name. */
struct UdfEffectsAnalysis
{
    static const char *key() { return "udf-effects"; }
    using Result = std::map<std::string, UdfEffects>;
    static Result run(Program &program);
};

/** Verdict for one access site of one function used by a traversal. */
struct AccessVerdict
{
    std::string function; ///< the UDF (variant) the site belongs to
    std::size_t site = 0; ///< index into UdfEffects::accesses
    ConflictKind kind = ConflictKind::NoConflict;
    std::string reason;   ///< human-readable explanation
};

/** Per-traversal conflict classification. */
struct ConflictInfo
{
    Stmt *stmt = nullptr; ///< the traversal statement
    EdgeSetIteratorStmt *edgeIter = nullptr; ///< null for vertex iterators
    std::string path;     ///< schedule label path ("s0:s1")
    std::string applyFunc; ///< resolved apply variant (or pre-lowering UDF)
    Direction direction = Direction::Push; ///< meaningful for edge iters
    bool vertexApply = false;
    bool parallel = false;
    bool ordered = false;
    bool dedup = false;
    std::vector<AccessVerdict> verdicts; ///< across apply + filter UDFs
    std::vector<std::string> readProps;  ///< static read set, sorted
    std::vector<std::string> writeProps; ///< static write set, sorted

    bool needsAtomics() const; ///< any ReducibleConflict
    bool hasRace() const;      ///< any UnsynchronizedRace
};

/** The whole program's conflict picture: effect summaries (embedded so
 *  consumers see the exact sites the verdicts refer to) plus one
 *  ConflictInfo per traversal, in program order. */
struct TraversalConflicts
{
    std::map<std::string, UdfEffects> effects;
    std::vector<ConflictInfo> traversals;

    const UdfEffects *effectsOf(const std::string &function) const;
};

/** Cached per-traversal conflict classification. Depends on the traversal
 *  index and the UDF effect summaries; both are recomputed privately (not
 *  through the AnalysisManager) so this analysis stays self-contained. */
struct ConflictAnalysis
{
    static const char *key() { return "traversal-conflicts"; }
    using Result = TraversalConflicts;
    static Result run(Program &program);
};

} // namespace ugc::midend

#endif // UGC_MIDEND_EFFECTS_H
