#include "serve/server.h"

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <istream>
#include <ostream>
#include <sstream>
#include <stdexcept>
#include <thread>

#include "frontend/lexer.h"
#include "frontend/sema.h"

namespace ugc::serve {

namespace {

/** Minimal JSON string escape (quotes, backslashes, control chars). */
std::string
jsonEscape(const std::string &text)
{
    std::string out;
    out.reserve(text.size() + 2);
    for (const char c : text) {
        switch (c) {
        case '"':
            out += "\\\"";
            break;
        case '\\':
            out += "\\\\";
            break;
        case '\n':
            out += "\\n";
            break;
        case '\t':
            out += "\\t";
            break;
        case '\r':
            out += "\\r";
            break;
        default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof buf, "\\u%04x", c);
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

/** Incremental JSONL object writer (the daemon needs no JSON library). */
class JsonLine
{
  public:
    explicit JsonLine(std::ostream &out) : _out(out) { _out << '{'; }

    JsonLine &
    field(const std::string &key, const std::string &value)
    {
        sep();
        _out << '"' << jsonEscape(key) << "\":\"" << jsonEscape(value)
             << '"';
        return *this;
    }

    JsonLine &
    field(const std::string &key, const char *value)
    {
        return field(key, std::string(value));
    }

    JsonLine &
    field(const std::string &key, uint64_t value)
    {
        sep();
        _out << '"' << jsonEscape(key) << "\":" << value;
        return *this;
    }

    JsonLine &
    field(const std::string &key, int64_t value)
    {
        sep();
        _out << '"' << jsonEscape(key) << "\":" << value;
        return *this;
    }

    JsonLine &
    field(const std::string &key, double value)
    {
        sep();
        char buf[64];
        std::snprintf(buf, sizeof buf, "%.3f", value);
        _out << '"' << jsonEscape(key) << "\":" << buf;
        return *this;
    }

    JsonLine &
    field(const std::string &key, bool value)
    {
        sep();
        _out << '"' << jsonEscape(key) << "\":" << (value ? "true" : "false");
        return *this;
    }

    ~JsonLine() { _out << "}\n" << std::flush; }

  private:
    void
    sep()
    {
        if (_first)
            _first = false;
        else
            _out << ',';
    }

    std::ostream &_out;
    bool _first = true;
};

std::vector<std::string>
tokenize(const std::string &line)
{
    std::vector<std::string> tokens;
    std::istringstream in(line);
    std::string token;
    while (in >> token)
        tokens.push_back(token);
    return tokens;
}

/** Split "key=value"; value empty when there is no '='. */
std::pair<std::string, std::string>
keyValue(const std::string &token)
{
    const size_t eq = token.find('=');
    if (eq == std::string::npos)
        return {token, ""};
    return {token.substr(0, eq), token.substr(eq + 1)};
}

int64_t
parseInt(const std::string &value, const std::string &key)
{
    size_t used = 0;
    const int64_t parsed = std::stoll(value, &used); // throws
    if (used != value.size())
        throw std::invalid_argument("bad integer for " + key + ": " + value);
    return parsed;
}

} // namespace

Server::Server(ServerOptions options, std::ostream &out)
    : _out(out), _engine(options.engine), _session(_engine, options.session)
{
}

Server::~Server()
{
    // Session's destructor drains the pool; emit what it completes so no
    // accepted query silently disappears if the caller forgot to quit.
    drain();
}

void
Server::respondError(uint64_t request, const std::string &message)
{
    JsonLine(_out).field("type", "error").field("req", request).field(
        "message", message);
}

void
Server::emitResult(uint64_t request, const QueryResult &result, bool profiled)
{
    JsonLine line(_out);
    line.field("type", "result")
        .field("req", request)
        .field("id", result.id)
        .field("ok", result.ok())
        .field("status", queryStatusName(result.status))
        .field("cache_hit", result.cacheHit)
        .field("degraded", result.degraded)
        .field("fused", static_cast<uint64_t>(result.fusedSources))
        .field("wall_ms", result.wallMs);
    if (result.ok())
        line.field("cycles", static_cast<uint64_t>(result.run.cycles));
    if (result.error.kind != RunError::Kind::None) {
        line.field("guard", runErrorKindName(result.error.kind));
        // Progress at the trip: clients see how far a cancelled or
        // deadline-exceeded query got (mid-round evidence).
        line.field("guard_round", result.error.round);
        line.field("guard_edges", result.error.edges);
    }
    if (!result.diagnostic.empty())
        line.field("diagnostic", result.diagnostic);
    if (profiled && result.run.profile) {
        // Lets clients (and the CI smoke) assert the warm-path property:
        // repeat queries must show no compile work in their profile.
        const bool compiled = result.run.profile->find("compile") != nullptr;
        line.field("compile_in_profile", compiled);
    }
}

void
Server::flushFinished()
{
    size_t kept = 0;
    for (size_t i = 0; i < _pending.size(); ++i) {
        if (_session.isDone(_pending[i].ticket)) {
            emitResult(_pending[i].request,
                       _session.wait(_pending[i].ticket),
                       _pending[i].profiled);
        } else {
            _pending[kept++] = _pending[i];
        }
    }
    _pending.resize(kept);
}

void
Server::drain()
{
    for (const PendingQuery &pending : _pending)
        emitResult(pending.request, _session.wait(pending.ticket),
                   pending.profiled);
    _pending.clear();
}

void
Server::shutdown(int64_t grace_ms)
{
    const auto begin = std::chrono::steady_clock::now();
    _stopped = true; // no further admissions
    size_t cancelled = 0;
    bool past_grace = false;
    while (!_pending.empty()) {
        flushFinished();
        if (_pending.empty())
            break;
        const int64_t waited =
            std::chrono::duration_cast<std::chrono::milliseconds>(
                std::chrono::steady_clock::now() - begin)
                .count();
        if (!past_grace && waited >= grace_ms) {
            // Grace expired: cooperatively cancel the stragglers. They
            // terminate within the engine's poll grain and still answer.
            past_grace = true;
            cancelled = _session.cancelAll();
        }
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    _drainMs = std::chrono::duration<double, std::milli>(
                   std::chrono::steady_clock::now() - begin)
                   .count();
    JsonLine(_out)
        .field("type", "shutdown")
        .field("drain_ms", _drainMs)
        .field("cancelled", static_cast<uint64_t>(cancelled));
}

void
Server::handleGraph(uint64_t request, const std::vector<std::string> &args)
{
    if (args.empty() || args[0].find('=') != std::string::npos) {
        respondError(request, "usage: graph <key> [dataset=<code>] "
                              "[scale=tiny|small|medium|large]");
        return;
    }
    const std::string &key = args[0];
    std::string dataset = key;
    datasets::Scale scale = _engine.options().datasetScale;
    for (size_t i = 1; i < args.size(); ++i) {
        const auto [arg_key, value] = keyValue(args[i]);
        if (arg_key == "dataset") {
            dataset = value;
        } else if (arg_key == "scale") {
            if (!datasets::parseScale(value, scale)) {
                respondError(request, "unknown scale '" + value +
                                          "'; known scales: tiny small "
                                          "medium large");
                return;
            }
        } else {
            respondError(request, "unknown graph option '" + arg_key + "'");
            return;
        }
    }
    try {
        _engine.loadDataset(dataset, key, scale);
        // Materialize eagerly: registration is the daemon's cold-start
        // moment, so the storage backend and cache outcome belong on this
        // response (and the first query doesn't pay the load).
        _engine.graph(key, /*weighted=*/false);
    } catch (const std::exception &error) {
        respondError(request, error.what());
        return;
    }
    JsonLine line(_out);
    line.field("type", "ok").field("req", request).field("graph", key);
    for (const GraphStorageInfo &info : _engine.graphStorage()) {
        if (info.key != key)
            continue;
        line.field("storage", storageBackendName(info.backend))
            .field("cache_hit", info.cacheHit)
            .field("mapped_bytes", static_cast<uint64_t>(info.mappedBytes))
            .field("load_ms", info.loadMs);
        break;
    }
}

void
Server::handleStorage(uint64_t request)
{
    for (const GraphStorageInfo &info : _engine.graphStorage()) {
        JsonLine(_out)
            .field("type", "storage")
            .field("req", request)
            .field("graph", info.key)
            .field("loaded", info.loaded)
            .field("backend", storageBackendName(info.backend))
            .field("mapped_bytes", static_cast<uint64_t>(info.mappedBytes))
            .field("cache_hit", info.cacheHit)
            .field("cache_built", info.cacheBuilt)
            .field("load_ms", info.loadMs);
    }
    const EngineStats stats = _engine.stats();
    JsonLine(_out)
        .field("type", "storage_summary")
        .field("req", request)
        .field("graph_cache_policy",
               ugb::cachePolicyName(_engine.options().graphCachePolicy))
        .field("mmap_graphs", static_cast<uint64_t>(stats.mmapGraphs))
        .field("mapped_bytes", static_cast<uint64_t>(stats.mappedBytes))
        .field("graph_cache_hits", stats.graphCacheHits)
        .field("graph_cache_builds", stats.graphCacheBuilds);
}

void
Server::handleAlgo(uint64_t request, const std::vector<std::string> &args)
{
    if (args.size() != 2) {
        respondError(request, "usage: algo <name> <path.gt>");
        return;
    }
    try {
        const std::string registered = _engine.registerAlgorithmFile(args[1]);
        if (registered != args[0]) {
            // Re-register under the requested name (path basenames and
            // protocol names may differ).
            std::ifstream in(args[1]);
            std::ostringstream buffer;
            buffer << in.rdbuf();
            _engine.registerAlgorithm(args[0], buffer.str());
        }
    } catch (const frontend::ParseError &error) {
        respondError(request, std::string("parse error: ") + error.what());
        return;
    } catch (const frontend::SemaError &error) {
        respondError(request, std::string("semantic error: ") + error.what());
        return;
    } catch (const std::exception &error) {
        respondError(request, error.what());
        return;
    }
    JsonLine(_out).field("type", "ok").field("req", request).field("algo",
                                                                   args[0]);
}

void
Server::handleRun(uint64_t request, const std::vector<std::string> &args)
{
    Query query;
    bool wait_inline = false;
    bool profiled = false;
    try {
        for (const std::string &arg : args) {
            const auto [key, value] = keyValue(arg);
            if (key == "algo")
                query.algorithm = value;
            else if (key == "graph")
                query.graph = value;
            else if (key == "backend")
                query.backend = value;
            else if (key == "start")
                query.start = parseInt(value, key);
            else if (key == "arg3")
                query.arg3 = parseInt(value, key);
            else if (key == "sources") {
                std::istringstream in(value);
                std::string item;
                while (std::getline(in, item, ','))
                    query.sources.push_back(parseInt(item, key));
            } else if (key == "schedule")
                query.schedule = value;
            else if (key == "validate")
                query.validate = value;
            else if (key == "profile")
                profiled = query.profiling = parseInt(value, key) != 0;
            else if (key == "wait")
                wait_inline = parseInt(value, key) != 0;
            else if (key == "max-iters")
                query.limits.maxIterations = parseInt(value, key);
            else if (key == "cycle-budget")
                query.limits.cycleBudget = parseInt(value, key);
            else if (key == "timeout-ms")
                query.limits.wallTimeoutMs = parseInt(value, key);
            else if (key == "memory-budget")
                query.limits.memoryBudgetBytes =
                    static_cast<Addr>(parseInt(value, key));
            else if (key == "oscillation-window")
                query.limits.oscillationWindow =
                    static_cast<int>(parseInt(value, key));
            else if (key == "deadline-ms")
                query.deadlineMs = parseInt(value, key);
            else if (key == "class") {
                if (value == "interactive")
                    query.cls = QueryClass::Interactive;
                else if (value == "batch")
                    query.cls = QueryClass::Batch;
                else
                    throw std::invalid_argument(
                        "unknown class '" + value +
                        "' (expected interactive or batch)");
            } else
                throw std::invalid_argument("unknown run option '" + key +
                                            "'");
        }
        if (query.algorithm.empty() || query.graph.empty())
            throw std::invalid_argument(
                "run needs at least algo=<name> graph=<key>");
        if (query.limits.any() && query.limits.oscillationWindow == 0)
            query.limits.oscillationWindow = kDefaultOscillationWindow;
    } catch (const std::exception &error) {
        respondError(request, error.what());
        return;
    }

    if (wait_inline) {
        emitResult(request, _session.run(query), profiled);
        return;
    }
    const uint64_t ticket = _session.submit(query);
    _pending.push_back(PendingQuery{request, ticket, profiled});
    JsonLine(_out).field("type", "accepted").field("req", request).field(
        "query", ticket);
}

void
Server::handleCancel(uint64_t request, const std::vector<std::string> &args)
{
    uint64_t target = 0;
    try {
        if (args.size() != 1)
            throw std::invalid_argument("usage: cancel <req>");
        target = static_cast<uint64_t>(parseInt(args[0], "cancel"));
    } catch (const std::exception &error) {
        respondError(request, error.what());
        return;
    }
    // Cancelling a request that already finished (or never existed) is
    // not an error — cancellation races completion by design; delivered
    // tells the client whether the token was actually tripped.
    bool delivered = false;
    for (const PendingQuery &pending : _pending) {
        if (pending.request == target) {
            delivered = _session.cancel(pending.ticket);
            break;
        }
    }
    JsonLine(_out)
        .field("type", "ok")
        .field("req", request)
        .field("cancel", target)
        .field("delivered", delivered);
}

void
Server::handleStats(uint64_t request)
{
    const EngineStats stats = _engine.stats();
    JsonLine(_out)
        .field("type", "stats")
        .field("req", request)
        .field("queries", stats.queries)
        .field("failures", stats.failures)
        .field("degraded", stats.degraded)
        .field("cache_hits", stats.cacheHits)
        .field("cache_misses", stats.cacheMisses)
        .field("cache_evictions", stats.cacheEvictions)
        .field("fused_queries", stats.fusedQueries)
        .field("graphs", static_cast<uint64_t>(stats.graphs))
        .field("algorithms", static_cast<uint64_t>(stats.algorithms))
        .field("cached_programs",
               static_cast<uint64_t>(stats.cachedPrograms))
        .field("graph_cache_hits", stats.graphCacheHits)
        .field("graph_cache_builds", stats.graphCacheBuilds)
        .field("mmap_graphs", static_cast<uint64_t>(stats.mmapGraphs))
        .field("mapped_bytes", static_cast<uint64_t>(stats.mappedBytes))
        .field("cancelled", stats.cancelled)
        .field("deadline_exceeded", stats.deadlineExceeded)
        .field("shed", stats.shed)
        .field("guard_trips", stats.guardTrips)
        .field("quarantine_hits", stats.quarantineHits)
        .field("quarantined",
               static_cast<uint64_t>(stats.quarantinedEntries))
        .field("in_flight", static_cast<uint64_t>(_session.inFlight()));
}

void
Server::handleHealth(uint64_t request)
{
    const EngineStats stats = _engine.stats();
    JsonLine(_out)
        .field("type", "health")
        .field("req", request)
        .field("ok", true)
        .field("in_flight", static_cast<uint64_t>(_session.inFlight()))
        .field("pending", static_cast<uint64_t>(_pending.size()))
        .field("shed", stats.shed)
        .field("cancelled", stats.cancelled)
        .field("deadline_exceeded", stats.deadlineExceeded)
        .field("degraded", stats.degraded)
        .field("quarantined",
               static_cast<uint64_t>(stats.quarantinedEntries))
        .field("quarantine_hits", stats.quarantineHits)
        .field("drain_ms", _drainMs);
}

bool
Server::handleLine(const std::string &line)
{
    if (_stopped)
        return false;
    std::vector<std::string> tokens = tokenize(line);
    if (tokens.empty() || tokens[0][0] == '#')
        return true;
    const uint64_t request = _nextRequest++;
    const std::string command = tokens[0];
    tokens.erase(tokens.begin());

    if (command == "graph") {
        handleGraph(request, tokens);
    } else if (command == "algo") {
        handleAlgo(request, tokens);
    } else if (command == "builtins") {
        _engine.registerBuiltins();
        JsonLine(_out).field("type", "ok").field("req", request).field(
            "algorithms", static_cast<uint64_t>(_engine.stats().algorithms));
    } else if (command == "run") {
        handleRun(request, tokens);
    } else if (command == "cancel") {
        handleCancel(request, tokens);
    } else if (command == "sync") {
        drain();
        JsonLine(_out).field("type", "synced").field("req", request);
    } else if (command == "stats") {
        handleStats(request);
    } else if (command == "health") {
        handleHealth(request);
    } else if (command == "storage") {
        handleStorage(request);
    } else if (command == "quit") {
        drain();
        JsonLine(_out).field("type", "bye").field("req", request);
        _stopped = true;
        return false;
    } else {
        respondError(request, "unknown command '" + command +
                                  "'; known commands: graph algo builtins "
                                  "run cancel sync stats health storage "
                                  "quit");
    }
    flushFinished();
    return true;
}

void
Server::serve(std::istream &in)
{
    std::string line;
    while (std::getline(in, line))
        if (!handleLine(line))
            break;
    drain();
}

} // namespace ugc::serve
