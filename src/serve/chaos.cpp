#include "serve/chaos.h"

#include <chrono>
#include <memory>
#include <sstream>

#include "api/ugc.h"
#include "graph/generators.h"
#include "support/cancel.h"
#include "support/faults.h"
#include "support/rng.h"

namespace ugc::serve {

namespace {

using Clock = std::chrono::steady_clock;

double
msSince(Clock::time_point begin)
{
    return std::chrono::duration<double, std::milli>(Clock::now() - begin)
        .count();
}

/** What one mixed-phase query is meant to exercise. */
enum class Disposition {
    Clean,         ///< must be Ok and bit-identical to the twin run
    TinyBudget,    ///< maxIterations=1, no degradation: BudgetExceeded
    PreCancel,     ///< token tripped before submit: Cancelled
    LateCancel,    ///< cancelled after submit: Ok or Cancelled
    ShortDeadline, ///< 1-3 ms end-to-end: Ok, Shed, or DeadlineExceeded
    BadRequest,    ///< unknown algorithm/graph/backend: BadRequest
};

struct Plan
{
    Disposition disposition = Disposition::Clean;
    Query query;
};

const char *
dispositionName(Disposition d)
{
    switch (d) {
    case Disposition::Clean:
        return "clean";
    case Disposition::TinyBudget:
        return "tiny_budget";
    case Disposition::PreCancel:
        return "pre_cancel";
    case Disposition::LateCancel:
        return "late_cancel";
    case Disposition::ShortDeadline:
        return "short_deadline";
    case Disposition::BadRequest:
        return "bad_request";
    }
    return "?";
}

/**
 * Derive query @p index of the mixed phase from the seed alone. Every
 * field — disposition, algorithm, graph, start vertex — comes from a
 * splitMix64 stream keyed by (seed, index), so the same ChaosOptions
 * reproduce the same schedule bit-for-bit, and the fault-free twin can
 * regenerate exactly the clean subset.
 */
Plan
makePlan(uint64_t seed, int index, VertexId social_vertices,
         VertexId road_vertices)
{
    uint64_t state = seed ^ (0x9e3779b97f4a7c15ULL * (uint64_t(index) + 1));
    const uint64_t pick = splitMix64(state) % 100;

    Plan plan;
    Query &q = plan.query;
    q.backend = "cpu";

    const uint64_t graph_draw = splitMix64(state);
    const bool social = (graph_draw & 1) == 0;
    q.graph = social ? "social" : "road";
    const VertexId vertices = social ? social_vertices : road_vertices;
    q.start = static_cast<VertexId>(splitMix64(state) % uint64_t(vertices));

    static const char *const kAlgorithms[] = {"bfs", "sssp", "pr", "cc",
                                              "bc"};
    q.algorithm = kAlgorithms[splitMix64(state) % 5];
    if (q.algorithm == "pr")
        q.arg3 = 3 + static_cast<int64_t>(splitMix64(state) % 5);
    else if (q.algorithm == "sssp")
        q.arg3 = 1 + static_cast<int64_t>(splitMix64(state) % 4);
    q.cls = (splitMix64(state) & 1) ? QueryClass::Interactive
                                    : QueryClass::Batch;

    if (pick < 60) {
        plan.disposition = Disposition::Clean;
    } else if (pick < 70) {
        plan.disposition = Disposition::TinyBudget;
        // BFS on the grid needs tens of While rounds from any start, so a
        // one-iteration budget with degradation disabled trips every run.
        q.algorithm = "bfs";
        q.graph = "road";
        q.start = q.start % road_vertices; // drawn against the other graph
        q.arg3 = 10;
        q.limits.maxIterations = 1;
        q.allowDegraded = false;
    } else if (pick < 78) {
        plan.disposition = Disposition::PreCancel;
        q.cancel = std::make_shared<CancelToken>();
        q.cancel->cancel();
    } else if (pick < 86) {
        plan.disposition = Disposition::LateCancel;
        q.algorithm = "pr";
        q.arg3 = 30;
    } else if (pick < 93) {
        plan.disposition = Disposition::ShortDeadline;
        q.algorithm = "pr";
        q.arg3 = 30;
        q.deadlineMs = 1 + static_cast<int64_t>(splitMix64(state) % 3);
    } else {
        plan.disposition = Disposition::BadRequest;
        switch (splitMix64(state) % 3) {
        case 0:
            q.algorithm = "no_such_algorithm";
            break;
        case 1:
            q.graph = "no_such_graph";
            break;
        default:
            q.backend = "no_such_backend";
            break;
        }
    }
    return plan;
}

/** Build the chaos engine: breaker off and single-threaded VMs so clean
 *  results cannot be perturbed by quarantine or reduction order. */
std::unique_ptr<Engine>
makeChaosEngine(const ChaosOptions &options)
{
    EngineOptions eo;
    eo.poolThreads = options.poolThreads;
    eo.breakerThreshold = 0;
    eo.backend.numThreads = 1;
    auto engine = std::make_unique<Engine>(eo);
    engine->registerBuiltins();
    engine->addGraph("social",
                     gen::rmat(11, 8, 0.57, 0.19, 0.19, true, 7));
    engine->addGraph("road", gen::roadGrid(40, 40, true, 8));
    return engine;
}

bool
sameResult(const QueryResult &a, const QueryResult &b, std::string &why)
{
    if (a.run.cycles != b.run.cycles) {
        why = "cycles differ";
        return false;
    }
    if (a.run.counters.all() != b.run.counters.all()) {
        why = "counters differ";
        return false;
    }
    if (a.run.properties != b.run.properties) {
        why = "properties differ";
        return false;
    }
    return true;
}

void
appendCounts(std::ostringstream &out, const char *key,
             const std::map<std::string, uint64_t> &counts)
{
    out << '"' << key << "\":{";
    bool first = true;
    for (const auto &[name, value] : counts) {
        if (!first)
            out << ',';
        first = false;
        out << '"' << name << "\":" << value;
    }
    out << '}';
}

} // namespace

bool
ChaosReport::passed() const
{
    return exactlyOnce && idempotentWaits && violations.empty() &&
           cleanMatched == cleanTotal &&
           overloadAnswered == overloadSubmitted &&
           faultAnswered == faultSubmitted;
}

std::string
ChaosReport::toJson() const
{
    std::ostringstream out;
    out << "{\"type\":\"chaos\",\"passed\":" << (passed() ? "true" : "false")
        << ",\"submitted\":" << submitted << ",\"answered\":" << answered
        << ",\"exactly_once\":" << (exactlyOnce ? "true" : "false")
        << ",\"idempotent_waits\":" << (idempotentWaits ? "true" : "false")
        << ",\"clean_total\":" << cleanTotal
        << ",\"clean_matched\":" << cleanMatched << ',';
    appendCounts(out, "status", statusCounts);
    out << ",\"overload_submitted\":" << overloadSubmitted
        << ",\"overload_answered\":" << overloadAnswered
        << ",\"overload_rejected\":" << overloadRejected
        << ",\"fault_submitted\":" << faultSubmitted
        << ",\"fault_answered\":" << faultAnswered
        << ",\"faults_fired\":" << faultsFired << ',';
    appendCounts(out, "fault_status", faultStatusCounts);
    out << ",\"violations\":" << violations.size() << ",\"wall_ms\":"
        << wallMs << '}';
    return out.str();
}

ChaosReport
runChaos(const ChaosOptions &options)
{
    ChaosReport report;
    const Clock::time_point begin = Clock::now();

    auto engine = makeChaosEngine(options);
    const VertexId social_vertices =
        engine->graph("social")->numVertices();
    const VertexId road_vertices = engine->graph("road")->numVertices();

    // --- mixed phase: submit everything, cancel stragglers, wait all ----
    std::vector<Plan> plans;
    plans.reserve(static_cast<size_t>(options.queries));
    for (int i = 0; i < options.queries; ++i)
        plans.push_back(makePlan(options.seed, i, social_vertices,
                                 road_vertices));

    Session::Options so;
    so.maxInFlight = static_cast<size_t>(options.queries) + 16;
    Session session(*engine, so);

    std::vector<uint64_t> tickets;
    tickets.reserve(plans.size());
    for (const Plan &plan : plans) {
        tickets.push_back(session.submit(plan.query));
        ++report.submitted;
    }
    for (size_t i = 0; i < plans.size(); ++i)
        if (plans[i].disposition == Disposition::LateCancel)
            session.cancel(tickets[i]);

    std::vector<QueryResult> results(plans.size());
    for (size_t i = 0; i < plans.size(); ++i) {
        try {
            results[i] = session.wait(tickets[i]);
            ++report.answered;
        } catch (const std::exception &e) {
            report.violations.push_back(
                "wait threw for query " + std::to_string(i) + " (" +
                dispositionName(plans[i].disposition) + "): " + e.what());
        }
    }
    report.exactlyOnce = report.answered == report.submitted;

    // Idempotent re-waits on the retained tail (kClaimedRetention).
    const size_t recheck = std::min<size_t>(plans.size(), 32);
    for (size_t i = plans.size() - recheck; i < plans.size(); ++i) {
        try {
            if (!session.isDone(tickets[i]) ||
                session.wait(tickets[i]).status != results[i].status) {
                report.idempotentWaits = false;
                report.violations.push_back(
                    "re-wait mismatch for query " + std::to_string(i));
            }
        } catch (const std::exception &e) {
            report.idempotentWaits = false;
            report.violations.push_back("re-wait threw for query " +
                                        std::to_string(i) + ": " +
                                        e.what());
        }
    }

    // Status invariants per disposition.
    for (size_t i = 0; i < plans.size(); ++i) {
        const QueryStatus status = results[i].status;
        report.statusCounts[queryStatusName(status)]++;
        bool ok = true;
        switch (plans[i].disposition) {
        case Disposition::Clean:
            ok = status == QueryStatus::Ok && !results[i].degraded;
            break;
        case Disposition::TinyBudget:
            ok = status == QueryStatus::BudgetExceeded;
            break;
        case Disposition::PreCancel:
            ok = status == QueryStatus::Cancelled;
            break;
        case Disposition::LateCancel:
            ok = status == QueryStatus::Ok ||
                 status == QueryStatus::Cancelled;
            break;
        case Disposition::ShortDeadline:
            ok = status == QueryStatus::Ok || status == QueryStatus::Shed ||
                 status == QueryStatus::DeadlineExceeded;
            break;
        case Disposition::BadRequest:
            ok = status == QueryStatus::BadRequest;
            break;
        }
        if (!ok)
            report.violations.push_back(
                std::string("unexpected status ") +
                queryStatusName(status) + " for " +
                dispositionName(plans[i].disposition) + " query " +
                std::to_string(i));
    }

    // --- fault-free twin: clean queries must match bit-for-bit ----------
    {
        auto twin_engine = makeChaosEngine(options);
        Session twin(*twin_engine, so);
        for (size_t i = 0; i < plans.size(); ++i) {
            if (plans[i].disposition != Disposition::Clean)
                continue;
            ++report.cleanTotal;
            const QueryResult fresh =
                twin.wait(twin.submit(plans[i].query));
            std::string why;
            if (fresh.status == QueryStatus::Ok &&
                results[i].status == QueryStatus::Ok &&
                sameResult(results[i], fresh, why)) {
                ++report.cleanMatched;
            } else {
                if (why.empty())
                    why = std::string("twin status ") +
                          queryStatusName(fresh.status);
                report.violations.push_back(
                    "clean query " + std::to_string(i) + " (" +
                    plans[i].query.algorithm + " on " +
                    plans[i].query.graph + ") diverged from twin: " + why);
            }
        }
    }

    // --- overload phase: burst through a tiny admission window ----------
    if (options.overloadPhase) {
        Session::Options tight;
        tight.maxInFlight = 2;
        Session narrow(*engine, tight);
        std::vector<uint64_t> burst;
        for (int i = 0; i < options.overloadQueries; ++i) {
            Query q;
            q.algorithm = "pr";
            q.graph = "social";
            q.arg3 = 50;
            burst.push_back(narrow.submit(q));
            ++report.overloadSubmitted;
        }
        for (uint64_t ticket : burst) {
            try {
                const QueryResult r = narrow.wait(ticket);
                ++report.overloadAnswered;
                if (r.status == QueryStatus::Rejected)
                    ++report.overloadRejected;
                else if (r.status != QueryStatus::Ok)
                    report.violations.push_back(
                        std::string("overload query resolved ") +
                        queryStatusName(r.status) +
                        " (expected ok or rejected)");
            } catch (const std::exception &e) {
                report.violations.push_back(
                    std::string("overload wait threw: ") + e.what());
            }
        }
    }

    // --- fault phase: accelerator queries under armed fault sites -------
    if (options.faultPhase) {
        faults::clearAll();
        {
            faults::ScopedPlan gpu(
                {"gpu.kernel_launch", 0.0, 3, options.seed});
            faults::ScopedPlan hb({"hb.dma_error", 0.0, 4, options.seed});
            faults::ScopedPlan swarm(
                {"swarm.task_abort", 0.25, 0, options.seed});
            faults::ScopedPlan alloc(
                {"runtime.alloc_fail", 0.02, 0, options.seed});

            static const char *const kBackends[] = {"gpu", "hb", "swarm"};
            std::vector<uint64_t> fault_tickets;
            uint64_t state = options.seed ^ 0xc3a5c85c97cb3127ULL;
            for (int i = 0; i < options.faultQueries; ++i) {
                Query q;
                q.backend = kBackends[i % 3];
                q.algorithm = (splitMix64(state) & 1) ? "bfs" : "pr";
                q.graph = (splitMix64(state) & 1) ? "social" : "road";
                q.start = static_cast<VertexId>(splitMix64(state) % 256);
                fault_tickets.push_back(session.submit(q));
                ++report.faultSubmitted;
            }
            for (uint64_t ticket : fault_tickets) {
                try {
                    const QueryResult r = session.wait(ticket);
                    ++report.faultAnswered;
                    report.faultStatusCounts[queryStatusName(r.status)]++;
                    // Injected faults surface as absorbed retries (Ok),
                    // exhausted retry policies (BudgetExceeded after a
                    // failed rescue), or structured runtime errors —
                    // never as hangs, crashes, or lost results.
                    if (r.status != QueryStatus::Ok &&
                        r.status != QueryStatus::BudgetExceeded &&
                        r.status != QueryStatus::RuntimeError)
                        report.violations.push_back(
                            std::string("fault-phase query resolved ") +
                            queryStatusName(r.status));
                } catch (const std::exception &e) {
                    report.violations.push_back(
                        std::string("fault-phase wait threw: ") +
                        e.what());
                }
            }
            for (const char *site :
                 {"gpu.kernel_launch", "hb.dma_error", "swarm.task_abort",
                  "runtime.alloc_fail"})
                report.faultsFired += faults::firedCount(site);
        }
        faults::clearAll();
    }

    report.wallMs = msSince(begin);
    return report;
}

} // namespace ugc::serve
