/**
 * @file
 * Seeded chaos harness for the serving stack (DESIGN.md §13).
 *
 * runChaos() drives an Engine/Session pair through hundreds of mixed
 * queries whose disposition — clean, budget-starved, pre-cancelled,
 * cancelled mid-flight, deadline-bound, or malformed — is derived
 * deterministically from a seed, then checks the reliability invariants
 * the serving layer promises:
 *
 *   1. Exactly once: every submitted query resolves through wait() with
 *      exactly one result; no hangs, no throws, no lost tickets.
 *   2. Deterministic casualties: dispositions whose outcome does not
 *      depend on scheduler timing (clean, tiny budget, pre-cancel, bad
 *      request) produce exactly the expected status every run.
 *   3. Blast-radius containment: clean queries are bit-identical —
 *      properties, simulated cycles, and machine counters — to a
 *      fault-free twin run of the same seed on a fresh engine.
 *
 * Two follow-on phases reuse the same engine: an overload phase submits
 * a burst through a tiny admission window (Rejected and Ok must together
 * account for every ticket), and a fault phase arms the deterministic
 * fault registry (gpu.kernel_launch, hb.dma_error, swarm.task_abort,
 * runtime.alloc_fail) while accelerator queries run on pool workers —
 * every outcome must still be a structured status from the allowed set.
 *
 * The harness runs with the circuit breaker disabled (breakerThreshold
 * = 0) and single-threaded VMs so that clean-query results cannot be
 * perturbed by quarantine fallbacks or parallel reduction orders; the
 * breaker has its own dedicated tests (tests/api/test_engine.cpp).
 *
 * Exposed both as a library entry point (tests/serve/test_chaos.cpp) and
 * through `ugcd --chaos` for the CI smoke job.
 */
#ifndef UGC_SERVE_CHAOS_H
#define UGC_SERVE_CHAOS_H

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace ugc::serve {

/** Tuning knobs of one chaos run; the defaults satisfy the reliability
 *  acceptance bar (>= 200 mixed queries). */
struct ChaosOptions
{
    uint64_t seed = 1;       ///< drives every per-query disposition
    int queries = 200;       ///< mixed-phase query count
    int overloadQueries = 24; ///< burst size of the overload phase
    int faultQueries = 24;   ///< accelerator queries under armed faults
    unsigned poolThreads = 0; ///< engine pool size (0 = hardware)
    bool faultPhase = true;  ///< run the armed-fault phase
    bool overloadPhase = true; ///< run the tiny-admission-window phase
};

/** Outcome of one chaos run (ugcd --chaos serializes this as JSON). */
struct ChaosReport
{
    // --- mixed phase -----------------------------------------------------
    int submitted = 0;
    int answered = 0;        ///< wait() calls that returned a result
    bool exactlyOnce = false; ///< answered == submitted, no wait() throw
    bool idempotentWaits = true; ///< re-waits returned the cached result
    std::map<std::string, uint64_t> statusCounts; ///< by queryStatusName

    int cleanTotal = 0;      ///< clean queries compared against the twin
    int cleanMatched = 0;    ///< ... that matched bit-for-bit
    /** Human-readable descriptions of every invariant violation; empty on
     *  a passing run. */
    std::vector<std::string> violations;

    // --- overload phase --------------------------------------------------
    int overloadSubmitted = 0;
    int overloadAnswered = 0;
    uint64_t overloadRejected = 0;

    // --- fault phase -----------------------------------------------------
    int faultSubmitted = 0;
    int faultAnswered = 0;
    uint64_t faultsFired = 0; ///< injected failures across armed sites
    std::map<std::string, uint64_t> faultStatusCounts;

    double wallMs = 0.0;

    bool passed() const;

    /** One-line JSON object (the ugcd --chaos output contract). */
    std::string toJson() const;
};

/**
 * Run the chaos schedule described by @p options. Never throws for
 * in-band failures — every broken invariant lands in
 * ChaosReport::violations; only setup errors (out of memory) propagate.
 * Always leaves the global fault registry disarmed.
 */
ChaosReport runChaos(const ChaosOptions &options = {});

} // namespace ugc::serve

#endif // UGC_SERVE_CHAOS_H
