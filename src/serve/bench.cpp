#include "serve/bench.h"

#include <chrono>
#include <cstdio>
#include <sstream>

namespace ugc::serve {

namespace {

using datasets::scaleName;

/** The mixed workload: algorithm + argv[3] (PR iterations / SSSP Δ). */
struct WorkItem
{
    const char *algorithm;
    int64_t arg3;
};

constexpr WorkItem kWorkload[] = {
    {"bfs", 0},
    {"sssp", 8192}, // road-graph Δ (bench/fig8 convention)
    {"pr", 5},
};

} // namespace

ThroughputReport
runThroughputBench(const ThroughputOptions &options)
{
    ThroughputReport report;
    report.options = options;

    EngineOptions engine_options;
    engine_options.datasetScale = options.scale;
    Engine engine(engine_options);
    engine.registerBuiltins();
    engine.loadDataset(options.dataset);

    Session session(engine, Session::Options{});

    // The query mix: workload entries round-robin over spread-out start
    // vertices, so repeated batches hit the program cache but not any
    // trivially repeated result.
    const auto graph = engine.graph(options.dataset);
    const VertexId vertices = graph ? graph->numVertices() : 1;
    std::vector<Query> batch;
    batch.reserve(options.queries);
    for (size_t i = 0; i < options.queries; ++i) {
        const WorkItem &item =
            kWorkload[i % (sizeof kWorkload / sizeof kWorkload[0])];
        Query query;
        query.algorithm = item.algorithm;
        query.graph = options.dataset;
        query.backend = options.backend;
        query.start = static_cast<VertexId>((i * 37) % vertices);
        query.arg3 = item.arg3;
        batch.push_back(std::move(query));
    }

    // Warm the program cache so every series measures the serving path
    // (cache hit, no frontend/midend work), not first-touch compilation.
    for (const WorkItem &item : kWorkload) {
        Query query;
        query.algorithm = item.algorithm;
        query.graph = options.dataset;
        query.backend = options.backend;
        query.arg3 = item.arg3;
        session.run(query);
    }

    for (const unsigned window : options.inFlight) {
        const auto begin = std::chrono::steady_clock::now();
        const std::vector<QueryResult> results =
            session.runAll(batch, window);
        const double wall_ms = std::chrono::duration<double, std::milli>(
                                   std::chrono::steady_clock::now() - begin)
                                   .count();
        ThroughputSeries series;
        series.inFlight = window;
        series.queries = results.size();
        for (const QueryResult &result : results)
            if (!result.ok())
                ++series.failures;
        series.wallMs = wall_ms;
        series.queriesPerSec =
            wall_ms > 0.0 ? 1000.0 * static_cast<double>(results.size()) /
                                wall_ms
                          : 0.0;
        report.series.push_back(series);
    }

    report.stats = engine.stats();
    return report;
}

std::string
ThroughputReport::toJson() const
{
    std::ostringstream out;
    out << "{\n";
    out << "  \"bench\": \"ugcd_throughput\",\n";
    out << "  \"dataset\": \"" << options.dataset << "\",\n";
    out << "  \"scale\": \"" << scaleName(options.scale) << "\",\n";
    out << "  \"backend\": \"" << options.backend << "\",\n";
    out << "  \"workload\": [\"bfs\", \"sssp\", \"pr\"],\n";
    out << "  \"queries_per_series\": " << options.queries << ",\n";
    out << "  \"series\": [\n";
    for (size_t i = 0; i < series.size(); ++i) {
        const ThroughputSeries &entry = series[i];
        char qps[64];
        std::snprintf(qps, sizeof qps, "%.1f", entry.queriesPerSec);
        char wall[64];
        std::snprintf(wall, sizeof wall, "%.2f", entry.wallMs);
        out << "    {\"in_flight\": " << entry.inFlight
            << ", \"queries\": " << entry.queries
            << ", \"failures\": " << entry.failures
            << ", \"wall_ms\": " << wall
            << ", \"queries_per_sec\": " << qps << "}"
            << (i + 1 < series.size() ? "," : "") << "\n";
    }
    out << "  ],\n";
    out << "  \"engine\": {\"queries\": " << stats.queries
        << ", \"cache_hits\": " << stats.cacheHits
        << ", \"cache_misses\": " << stats.cacheMisses
        << ", \"failures\": " << stats.failures << "}\n";
    out << "}\n";
    return out.str();
}

} // namespace ugc::serve
