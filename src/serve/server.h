/**
 * @file
 * ugcd request server (DESIGN.md §11): a line-protocol front end over
 * ugc::Engine/Session for the graph-serving daemon.
 *
 * Requests are single lines; responses are JSON objects, one per line
 * (JSONL), so clients and the CI smoke test can validate them with any
 * JSON parser while the daemon itself needs none.
 *
 * Request grammar (tokens separated by spaces, `key=value` options):
 *
 *   graph <key> [dataset=<code>] [scale=tiny|small|medium|large]
 *       Register dataset <code> (default: <key>) under <key> and
 *       materialize it (through the .ugb graph cache when enabled); the
 *       response reports the storage backend, cache outcome, and load
 *       time.
 *   algo <name> <path.gt>
 *       Parse + register a GraphIt algorithm file under <name>.
 *   builtins
 *       Register the built-in evaluated algorithms (pr bfs sssp cc bc).
 *   run algo=<name> graph=<key> [backend=cpu|gpu|swarm|hb] [start=N]
 *       [arg3=N] [sources=a,b,c] [schedule=default|tuned|baseline]
 *       [validate=bfs|sssp|cc|pr] [profile=0|1] [wait=0|1]
 *       [max-iters=N] [cycle-budget=N] [timeout-ms=N]
 *       [deadline-ms=N] [class=interactive|batch]
 *       Execute a query. By default the query runs asynchronously on the
 *       engine's shared pool: the server replies `accepted` immediately
 *       and emits the `result` line when the query finishes (at the
 *       latest on the next sync/quit). wait=1 forces an inline run.
 *       deadline-ms is end-to-end (queue wait counts); class selects the
 *       admission window under per-class limits.
 *   cancel <req>
 *       Request cooperative cancellation of the async query accepted
 *       under request id <req>. The query still emits exactly one
 *       `result` line (status cancelled if the cancel landed in time).
 *   sync
 *       Block until every in-flight query has finished and its result
 *       line is emitted.
 *   stats
 *       Engine statistics snapshot.
 *   health
 *       Liveness/overload snapshot: in-flight and pending counts, shed /
 *       cancelled / deadline-exceeded totals, quarantined schedule
 *       combinations, and the last drain time.
 *   storage
 *       One `storage` line per registered graph (backend, mapped bytes,
 *       cache outcome) plus a `storage_summary` line.
 *   quit
 *       sync, then acknowledge and stop accepting requests.
 *
 * Per-query failures are `result` lines with ok=false and a structured
 * status (QueryStatus names); only malformed request lines produce
 * `error` responses. The server never terminates the process. On SIGTERM
 * or SIGINT the daemon calls shutdown(): admission stops, stragglers past
 * the grace period are cooperatively cancelled, and every accepted query
 * still gets exactly one result line before exit.
 */
#ifndef UGC_SERVE_SERVER_H
#define UGC_SERVE_SERVER_H

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "api/ugc.h"

namespace ugc::serve {

struct ServerOptions
{
    EngineOptions engine;
    Session::Options session;
};

class Server
{
  public:
    Server(ServerOptions options, std::ostream &out);
    ~Server();

    /**
     * Handle one request line (empty lines and `#` comments are ignored),
     * emitting any responses. Returns false once `quit` has been handled;
     * the server ignores further requests after that.
     */
    bool handleLine(const std::string &line);

    /** Wait for every in-flight query and emit its result line. */
    void drain();

    /**
     * Graceful shutdown (signal path): stop accepting requests, keep
     * flushing finished queries, cooperatively cancel whatever is still
     * running after @p grace_ms, and emit a final `shutdown` line once
     * every accepted query has its result line. Bounded by the engine's
     * cancellation poll grain, never by query runtime.
     */
    void shutdown(int64_t grace_ms);

    /** Read requests from @p in until EOF or quit (the daemon main loop). */
    void serve(std::istream &in);

    Engine &engine() { return _engine; }

    Session &session() { return _session; }

  private:
    struct PendingQuery
    {
        uint64_t request = 0;
        uint64_t ticket = 0;
        bool profiled = false;
    };

    void respondError(uint64_t request, const std::string &message);
    void emitResult(uint64_t request, const QueryResult &result,
                    bool profiled);
    void flushFinished();

    void handleGraph(uint64_t request, const std::vector<std::string> &args);
    void handleAlgo(uint64_t request, const std::vector<std::string> &args);
    void handleRun(uint64_t request, const std::vector<std::string> &args);
    void handleCancel(uint64_t request,
                      const std::vector<std::string> &args);
    void handleStats(uint64_t request);
    void handleHealth(uint64_t request);
    void handleStorage(uint64_t request);

    std::ostream &_out;
    Engine _engine;
    Session _session;
    std::vector<PendingQuery> _pending; ///< submit order
    uint64_t _nextRequest = 1;
    bool _stopped = false;
    double _drainMs = 0.0; ///< last drain/shutdown wait (health)
};

} // namespace ugc::serve

#endif // UGC_SERVE_SERVER_H
