/**
 * @file
 * ugcd serving-throughput benchmark (DESIGN.md §11): queries/sec of a
 * mixed bfs/sssp/pr workload against one Engine at increasing in-flight
 * depths. Exercises exactly the production path — Session::runAll over
 * the shared pool, programs served from the compiled-program cache after
 * the first touch of each (algorithm, backend) pair.
 */
#ifndef UGC_SERVE_BENCH_H
#define UGC_SERVE_BENCH_H

#include <cstdint>
#include <string>
#include <vector>

#include "api/ugc.h"

namespace ugc::serve {

struct ThroughputOptions
{
    std::string dataset = "RN";       ///< dataset code served
    datasets::Scale scale = datasets::Scale::Small;
    std::string backend = "cpu";
    size_t queries = 96;              ///< batch size per series
    std::vector<unsigned> inFlight = {1, 8, 64};
};

struct ThroughputSeries
{
    unsigned inFlight = 0;
    size_t queries = 0;
    size_t failures = 0;
    double wallMs = 0.0;
    double queriesPerSec = 0.0;
};

struct ThroughputReport
{
    ThroughputOptions options;
    std::vector<ThroughputSeries> series;
    EngineStats stats; ///< engine counters after all series

    /** BENCH_ugcd.json payload (deterministic key order). */
    std::string toJson() const;
};

/** Run the benchmark: one Engine, one warm-up query per workload entry
 *  (so every series measures the cached-program path), then runAll
 *  batches at each in-flight depth. */
ThroughputReport runThroughputBench(const ThroughputOptions &options);

} // namespace ugc::serve

#endif // UGC_SERVE_BENCH_H
