/**
 * @file
 * Serial reference implementations of the five evaluated algorithms
 * (§IV-A) plus validators. Every GraphVM's output is checked against
 * these in the test suite.
 */
#ifndef UGC_REFERENCE_REFERENCE_H
#define UGC_REFERENCE_REFERENCE_H

#include <cstdint>
#include <vector>

#include "graph/graph.h"

namespace ugc::reference {

/** Sentinel used for unreached vertices in integer distance arrays;
 *  matches the DSL sources' INT32_MAX initializer. */
inline constexpr int64_t kUnreached = 2147483647;

/** BFS levels from @p source (kUnreached if unreachable). */
std::vector<int64_t> bfsLevels(const Graph &graph, VertexId source);

/** Single-source shortest path distances (Dijkstra). */
std::vector<int64_t> ssspDistances(const Graph &graph, VertexId source);

/** PageRank after @p iterations of synchronous power iteration. */
std::vector<double> pageRank(const Graph &graph, int iterations,
                             double damp = 0.85);

/**
 * PageRankDelta (GraphIt's data-driven PR): only vertices whose rank
 * moved by more than epsilon2 * rank stay active. Operation order matches
 * the DSL program exactly, so results are bit-comparable.
 */
std::vector<double> pageRankDelta(const Graph &graph, int iterations,
                                  double damp = 0.85,
                                  double epsilon2 = 0.1);

/** Connected component labels: every vertex maps to the smallest vertex
 *  id in its component. */
std::vector<int64_t> connectedComponents(const Graph &graph);

/** Brandes dependency scores from a single source (matching the paper's
 *  single-source BC formulation; the source itself accumulates too). */
std::vector<double> bcDependencies(const Graph &graph, VertexId source);

// --- validators -----------------------------------------------------------

/**
 * Check that @p parent is a valid BFS parent array for @p source: parents
 * form a tree rooted at source whose depths equal the reference levels.
 * (Parent arrays are not unique; levels are.)
 */
bool validBfsParents(const Graph &graph, VertexId source,
                     const std::vector<double> &parent);

/** Exact match of integer properties (stored as doubles). */
bool equalInt(const std::vector<double> &actual,
              const std::vector<int64_t> &expected);

/** Element-wise closeness for float properties. */
bool closeTo(const std::vector<double> &actual,
             const std::vector<double> &expected, double tolerance = 1e-6);

} // namespace ugc::reference

#endif // UGC_REFERENCE_REFERENCE_H
