#include "reference/reference.h"

#include <algorithm>
#include <cmath>
#include <queue>

namespace ugc::reference {

std::vector<int64_t>
bfsLevels(const Graph &graph, VertexId source)
{
    std::vector<int64_t> level(static_cast<size_t>(graph.numVertices()),
                               kUnreached);
    std::queue<VertexId> queue;
    level[source] = 0;
    queue.push(source);
    while (!queue.empty()) {
        const VertexId u = queue.front();
        queue.pop();
        for (VertexId v : graph.outNeighbors(u)) {
            if (level[v] == kUnreached) {
                level[v] = level[u] + 1;
                queue.push(v);
            }
        }
    }
    return level;
}

std::vector<int64_t>
ssspDistances(const Graph &graph, VertexId source)
{
    std::vector<int64_t> dist(static_cast<size_t>(graph.numVertices()),
                              kUnreached);
    using Entry = std::pair<int64_t, VertexId>;
    std::priority_queue<Entry, std::vector<Entry>, std::greater<>> heap;
    dist[source] = 0;
    heap.push({0, source});
    while (!heap.empty()) {
        const auto [d, u] = heap.top();
        heap.pop();
        if (d != dist[u])
            continue;
        const auto nbrs = graph.outNeighbors(u);
        const auto wts = graph.outWeights(u);
        for (size_t i = 0; i < nbrs.size(); ++i) {
            const int64_t nd = d + wts[i];
            if (nd < dist[nbrs[i]]) {
                dist[nbrs[i]] = nd;
                heap.push({nd, nbrs[i]});
            }
        }
    }
    return dist;
}

std::vector<double>
pageRank(const Graph &graph, int iterations, double damp)
{
    const auto n = static_cast<size_t>(graph.numVertices());
    const double beta = (1.0 - damp) / static_cast<double>(n);
    std::vector<double> rank(n, 1.0 / static_cast<double>(n));
    std::vector<double> next(n, 0.0);
    for (int iter = 0; iter < iterations; ++iter) {
        std::fill(next.begin(), next.end(), 0.0);
        for (VertexId u = 0; u < graph.numVertices(); ++u) {
            const EdgeId deg = graph.outDegree(u);
            if (deg == 0)
                continue;
            const double contrib =
                rank[static_cast<size_t>(u)] / static_cast<double>(deg);
            for (VertexId v : graph.outNeighbors(u))
                next[static_cast<size_t>(v)] += contrib;
        }
        for (size_t v = 0; v < n; ++v)
            rank[v] = beta + damp * next[v];
    }
    return rank;
}

std::vector<double>
pageRankDelta(const Graph &graph, int iterations, double damp,
              double epsilon2)
{
    const auto n = static_cast<size_t>(graph.numVertices());
    const double beta = (1.0 - damp) / static_cast<double>(n);
    std::vector<double> rank(n, 0.0);
    std::vector<double> delta(n, 1.0 / static_cast<double>(n));
    std::vector<double> ngh_sum(n, 0.0);
    std::vector<VertexId> frontier(n);
    for (size_t v = 0; v < n; ++v)
        frontier[v] = static_cast<VertexId>(v);

    for (int iter = 0; iter < iterations; ++iter) {
        for (VertexId src : frontier) {
            const EdgeId deg = graph.outDegree(src);
            if (deg == 0)
                continue;
            const double contrib =
                delta[static_cast<size_t>(src)] /
                static_cast<double>(deg);
            for (VertexId dst : graph.outNeighbors(src))
                ngh_sum[static_cast<size_t>(dst)] += contrib;
        }
        frontier.clear();
        for (size_t v = 0; v < n; ++v) {
            if (iter == 0) {
                delta[v] = damp * ngh_sum[v] + beta;
                rank[v] += delta[v];
                delta[v] = delta[v] - 1.0 / static_cast<double>(n);
            } else {
                delta[v] = ngh_sum[v] * damp;
                rank[v] += delta[v];
            }
            if (delta[v] > epsilon2 * rank[v] ||
                (0.0 - delta[v]) > epsilon2 * rank[v])
                frontier.push_back(static_cast<VertexId>(v));
            ngh_sum[v] = 0.0;
        }
    }
    return rank;
}

std::vector<int64_t>
connectedComponents(const Graph &graph)
{
    std::vector<int64_t> label(static_cast<size_t>(graph.numVertices()));
    for (VertexId v = 0; v < graph.numVertices(); ++v)
        label[static_cast<size_t>(v)] = v;
    // BFS per component from the smallest unvisited id.
    std::vector<bool> visited(label.size(), false);
    for (VertexId root = 0; root < graph.numVertices(); ++root) {
        if (visited[static_cast<size_t>(root)])
            continue;
        std::queue<VertexId> queue;
        queue.push(root);
        visited[static_cast<size_t>(root)] = true;
        while (!queue.empty()) {
            const VertexId u = queue.front();
            queue.pop();
            label[static_cast<size_t>(u)] = root;
            for (VertexId v : graph.outNeighbors(u)) {
                if (!visited[static_cast<size_t>(v)]) {
                    visited[static_cast<size_t>(v)] = true;
                    queue.push(v);
                }
            }
        }
    }
    return label;
}

std::vector<double>
bcDependencies(const Graph &graph, VertexId source)
{
    const auto n = static_cast<size_t>(graph.numVertices());
    std::vector<int64_t> level(n, -1);
    std::vector<double> sigma(n, 0.0);
    std::vector<double> delta(n, 0.0);
    std::vector<VertexId> order; // BFS order

    std::queue<VertexId> queue;
    level[source] = 0;
    sigma[source] = 1.0;
    queue.push(source);
    while (!queue.empty()) {
        const VertexId u = queue.front();
        queue.pop();
        order.push_back(u);
        for (VertexId v : graph.outNeighbors(u)) {
            if (level[v] < 0) {
                level[v] = level[u] + 1;
                queue.push(v);
            }
            if (level[v] == level[u] + 1)
                sigma[v] += sigma[u];
        }
    }
    // Reverse accumulation (predecessors include the source).
    for (auto it = order.rbegin(); it != order.rend(); ++it) {
        const VertexId w = *it;
        for (VertexId u : graph.outNeighbors(w)) {
            if (level[u] == level[w] - 1) {
                delta[u] +=
                    (sigma[u] / sigma[w]) * (1.0 + delta[w]);
            }
        }
    }
    return delta;
}

bool
validBfsParents(const Graph &graph, VertexId source,
                const std::vector<double> &parent)
{
    const std::vector<int64_t> levels = bfsLevels(graph, source);
    if (parent.size() != levels.size())
        return false;
    for (VertexId v = 0; v < graph.numVertices(); ++v) {
        const auto p = static_cast<VertexId>(parent[v]);
        if (levels[v] == kUnreached) {
            if (p != -1)
                return false;
            continue;
        }
        if (v == source) {
            if (p != source)
                return false;
            continue;
        }
        // The parent must be a neighbor exactly one level shallower.
        if (p < 0 || p >= graph.numVertices())
            return false;
        if (!graph.hasEdge(p, v))
            return false;
        if (levels[p] != levels[v] - 1)
            return false;
    }
    return true;
}

bool
equalInt(const std::vector<double> &actual,
         const std::vector<int64_t> &expected)
{
    if (actual.size() != expected.size())
        return false;
    for (size_t i = 0; i < actual.size(); ++i)
        if (static_cast<int64_t>(actual[i]) != expected[i])
            return false;
    return true;
}

bool
closeTo(const std::vector<double> &actual,
        const std::vector<double> &expected, double tolerance)
{
    if (actual.size() != expected.size())
        return false;
    for (size_t i = 0; i < actual.size(); ++i)
        if (std::abs(actual[i] - expected[i]) > tolerance)
            return false;
    return true;
}

} // namespace ugc::reference
