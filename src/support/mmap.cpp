#include "support/mmap.h"

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <stdexcept>
#include <utility>

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

namespace ugc::support {

namespace {

[[noreturn]] void
throwErrno(const std::string &path, const char *what)
{
    throw std::runtime_error(path + ": " + what + ": " +
                             std::strerror(errno));
}

} // namespace

MappedFile::MappedFile(const std::string &path) : _path(path)
{
    const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
    if (fd < 0)
        throwErrno(path, "cannot open for mapping");
    struct stat st {};
    if (::fstat(fd, &st) != 0) {
        const int saved = errno;
        ::close(fd);
        errno = saved;
        throwErrno(path, "cannot stat");
    }
    _size = static_cast<size_t>(st.st_size);
    if (_size == 0) {
        // mmap(len=0) is EINVAL; an empty file is a valid empty mapping.
        ::close(fd);
        _mappedEmpty = true;
        return;
    }
    void *addr = ::mmap(nullptr, _size, PROT_READ, MAP_PRIVATE, fd, 0);
    const int saved = errno;
    ::close(fd); // the mapping holds its own reference
    if (addr == MAP_FAILED) {
        _size = 0;
        errno = saved;
        throwErrno(path, "mmap failed");
    }
    _data = static_cast<const std::byte *>(addr);
}

MappedFile::~MappedFile()
{
    reset();
}

MappedFile::MappedFile(MappedFile &&other) noexcept
    : _data(std::exchange(other._data, nullptr)),
      _size(std::exchange(other._size, 0)),
      _mappedEmpty(std::exchange(other._mappedEmpty, false)),
      _path(std::move(other._path))
{
    other._path.clear();
}

MappedFile &
MappedFile::operator=(MappedFile &&other) noexcept
{
    if (this != &other) {
        reset();
        _data = std::exchange(other._data, nullptr);
        _size = std::exchange(other._size, 0);
        _mappedEmpty = std::exchange(other._mappedEmpty, false);
        _path = std::move(other._path);
        other._path.clear();
    }
    return *this;
}

void
MappedFile::reset()
{
    if (_data != nullptr)
        ::munmap(const_cast<std::byte *>(_data), _size);
    _data = nullptr;
    _size = 0;
    _mappedEmpty = false;
}

void
MappedFile::advise(MapAdvice advice) const
{
    if (_data == nullptr)
        return;
    int flag = MADV_NORMAL;
    switch (advice) {
    case MapAdvice::Normal:
        flag = MADV_NORMAL;
        break;
    case MapAdvice::Sequential:
        flag = MADV_SEQUENTIAL;
        break;
    case MapAdvice::Random:
        flag = MADV_RANDOM;
        break;
    case MapAdvice::WillNeed:
        flag = MADV_WILLNEED;
        break;
    }
    // Best effort: a refused hint must never fail a load.
    (void)::madvise(const_cast<std::byte *>(_data), _size, flag);
}

void
MappedFile::checkWindow(size_t offset, size_t bytes, size_t alignment) const
{
    if (offset > _size || bytes > _size - offset)
        throw std::out_of_range(
            _path + ": mapped view [" + std::to_string(offset) + ", " +
            std::to_string(offset + bytes) + ") exceeds the " +
            std::to_string(_size) + "-byte mapping");
    if (offset % alignment != 0)
        throw std::out_of_range(_path + ": mapped view at offset " +
                                std::to_string(offset) +
                                " is misaligned for its element type");
}

void
atomicWriteFile(const std::string &path, const void *data, size_t size)
{
    // Same-directory temp so rename() stays within one filesystem.
    const std::string tmp =
        path + ".tmp." + std::to_string(static_cast<long>(::getpid()));
    const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
    if (fd < 0)
        throwErrno(tmp, "cannot create temporary");
    size_t written = 0;
    const char *bytes = static_cast<const char *>(data);
    while (written < size) {
        const ssize_t n = ::write(fd, bytes + written, size - written);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            const int saved = errno;
            ::close(fd);
            ::unlink(tmp.c_str());
            errno = saved;
            throwErrno(tmp, "write failed");
        }
        written += static_cast<size_t>(n);
    }
    if (::close(fd) != 0) {
        const int saved = errno;
        ::unlink(tmp.c_str());
        errno = saved;
        throwErrno(tmp, "close failed");
    }
    if (::rename(tmp.c_str(), path.c_str()) != 0) {
        const int saved = errno;
        ::unlink(tmp.c_str());
        errno = saved;
        throwErrno(path, "rename into place failed");
    }
}

} // namespace ugc::support
