#include "support/guard.h"

namespace ugc {

const char *
runErrorKindName(RunError::Kind kind)
{
    switch (kind) {
    case RunError::Kind::None:
        return "none";
    case RunError::Kind::IterationLimit:
        return "iteration_limit";
    case RunError::Kind::CycleBudget:
        return "cycle_budget";
    case RunError::Kind::WallTimeout:
        return "wall_timeout";
    case RunError::Kind::MemoryBudget:
        return "memory_budget";
    case RunError::Kind::Oscillation:
        return "oscillation";
    case RunError::Kind::RetryExhausted:
        return "retry_exhausted";
    case RunError::Kind::AllocFailed:
        return "alloc_failed";
    case RunError::Kind::IoError:
        return "io_error";
    case RunError::Kind::Cancelled:
        return "cancelled";
    }
    return "unknown";
}

bool
recoverable(RunError::Kind kind)
{
    switch (kind) {
    case RunError::Kind::IterationLimit:
    case RunError::Kind::CycleBudget:
    case RunError::Kind::WallTimeout:
    case RunError::Kind::MemoryBudget:
    case RunError::Kind::Oscillation:
    case RunError::Kind::RetryExhausted:
        return true;
    case RunError::Kind::None:
    case RunError::Kind::AllocFailed:
    case RunError::Kind::IoError:
    case RunError::Kind::Cancelled: // re-running a cancelled query is waste
        return false;
    }
    return false;
}

std::string
RunError::toString() const
{
    std::string out = "run error [";
    out += runErrorKindName(kind);
    out += "]";
    if (round > 0)
        out += " at round " + std::to_string(round);
    if (edges > 0)
        out += " after " + std::to_string(edges) + " edges";
    if (!site.empty())
        out += " (site " + site + ")";
    if (!detail.empty())
        out += ": " + detail;
    return out;
}

} // namespace ugc
