/**
 * @file
 * Run-time execution guardrails (DESIGN.md §8): budgets, watchdog errors,
 * and retry policies shared by the execution engine, the machine models,
 * and the GraphVM recovery layer.
 *
 * The philosophy mirrors the compile-time verifier (§7): anomalies become
 * *structured* errors — a RunError names what tripped, in which round, and
 * at which fault site — so harnesses can react (GraphVM::runGuarded falls
 * back to the default schedule; ugcc maps kinds onto its exit-code
 * contract) instead of parsing ad-hoc exception strings.
 */
#ifndef UGC_SUPPORT_GUARD_H
#define UGC_SUPPORT_GUARD_H

#include <cstdint>
#include <stdexcept>
#include <string>

#include "support/types.h"

namespace ugc {

/**
 * Budgets and watchdog knobs of one execution. A zero field means
 * "unlimited / disabled"; RunLimits{} guards nothing and costs nothing.
 * Limits can be set per-VM (BackendOptions::limits) and per-run
 * (RunInputs::limits); a nonzero per-run field wins (see
 * RunLimits::merged).
 */
struct RunLimits
{
    /** Maximum iterations of any single while loop (rounds). */
    int64_t maxIterations = 0;

    /** Maximum total simulated cycles charged by the machine model. */
    Cycles cycleBudget = 0;

    /** Maximum host wall-clock time of the engine run. The only
     *  host-volatile guard: it never alters results or profiles of runs
     *  that stay under it, so the determinism contract is unaffected. */
    int64_t wallTimeoutMs = 0;

    /** Maximum logical bytes of runtime allocations (property arrays in
     *  the machine-model address space). */
    Addr memoryBudgetBytes = 0;

    /**
     * Convergence watchdog: depth of the per-loop state-hash history. If
     * the hash of the engine's complete mutable state (frontiers, scalars,
     * queues, properties) repeats within this many rounds, the run cannot
     * ever terminate (execution is deterministic in that state) and is
     * stopped with RunError::Kind::Oscillation. 0 disables the check.
     */
    int oscillationWindow = 0;

    /** True if any budget or watchdog is configured. */
    bool
    any() const
    {
        return maxIterations > 0 || cycleBudget > 0 || wallTimeoutMs > 0 ||
               memoryBudgetBytes > 0 || oscillationWindow > 0;
    }

    /** Field-wise merge: a nonzero field of @p over rides @p base. */
    static RunLimits
    merged(const RunLimits &base, const RunLimits &over)
    {
        RunLimits out = base;
        if (over.maxIterations)
            out.maxIterations = over.maxIterations;
        if (over.cycleBudget)
            out.cycleBudget = over.cycleBudget;
        if (over.wallTimeoutMs)
            out.wallTimeoutMs = over.wallTimeoutMs;
        if (over.memoryBudgetBytes)
            out.memoryBudgetBytes = over.memoryBudgetBytes;
        if (over.oscillationWindow)
            out.oscillationWindow = over.oscillationWindow;
        return out;
    }
};

/** Watchdog window used when a harness asks for guarding without tuning
 *  the history depth (ugcc --max-iters/--timeout-ms). */
inline constexpr int kDefaultOscillationWindow = 8;

/** Structured description of why a run was terminated. */
struct RunError
{
    enum class Kind {
        None,           ///< no error
        IterationLimit, ///< a while loop exceeded RunLimits::maxIterations
        CycleBudget,    ///< simulated cycles exceeded the budget
        WallTimeout,    ///< host wall clock exceeded the timeout
        MemoryBudget,   ///< runtime allocations exceeded the budget
        Oscillation,    ///< frontier/state hash repeated (stuck loop)
        RetryExhausted, ///< a fault site failed more than RetryPolicy allows
        AllocFailed,    ///< runtime allocation failure (runtime.alloc_fail)
        IoError,        ///< I/O failure (loader.io_error)
        Cancelled,      ///< the request's CancelToken was cancelled
    };

    Kind kind = Kind::None;
    int64_t round = 0;  ///< engine round counter when the guard tripped
    std::string site;   ///< fault site, for retry/alloc/io kinds
    std::string detail; ///< human-readable explanation
    int64_t edges = 0;  ///< edges traversed when it tripped (0 = unknown)

    std::string toString() const;
};

/** Stable lower-case name of a RunError kind ("iteration_limit", ...). */
const char *runErrorKindName(RunError::Kind kind);

/**
 * True for kinds a schedule fallback can plausibly rescue: watchdog trips,
 * budget exhaustion, and retry exhaustion — the triggers GraphVM::
 * runGuarded degrades on. Allocation and I/O failures are not schedule
 * problems; they propagate to the caller.
 */
bool recoverable(RunError::Kind kind);

/** Exception wrapper carrying a RunError through the engine/model stack. */
class GuardError : public std::runtime_error
{
  public:
    explicit GuardError(RunError error)
        : std::runtime_error(error.toString()), _error(std::move(error))
    {
    }

    const RunError &error() const { return _error; }

  private:
    RunError _error;
};

/**
 * How a machine model reacts to a transient fault at one of its sites
 * (failed GPU kernel launch, HammerBlade DMA error, injected Swarm task
 * abort): retry up to maxRetries times, charging an exponentially growing
 * backoff each attempt. Exhausting the retries throws GuardError with
 * Kind::RetryExhausted, which runGuarded() treats as a fallback trigger.
 */
struct RetryPolicy
{
    unsigned maxRetries = 3;
    Cycles backoffBase = 64; ///< cycles charged on the first retry

    /** Backoff cycles of retry @p attempt (1-based), doubling per attempt
     *  and saturating to keep charges bounded. */
    Cycles
    backoff(unsigned attempt) const
    {
        const unsigned shift = attempt > 16 ? 16 : (attempt ? attempt - 1 : 0);
        return backoffBase << shift;
    }
};

} // namespace ugc

#endif // UGC_SUPPORT_GUARD_H
