/**
 * @file
 * Dynamic bitset with atomic set support.
 *
 * Backs the BITMAP vertex-set representation (Table II of the paper) and the
 * visited filters inside the GraphVM traversal engines.
 */
#ifndef UGC_SUPPORT_BITSET_H
#define UGC_SUPPORT_BITSET_H

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace ugc {

/**
 * Fixed-capacity dynamic bitset.
 *
 * Word-granular storage; `setAtomic` allows concurrent producers. The count
 * of set bits is not cached — `count()` is O(words).
 */
class Bitset
{
  public:
    Bitset() = default;

    explicit Bitset(size_t num_bits) { resize(num_bits); }

    /** Resize to hold @p num_bits bits; clears all bits. */
    void
    resize(size_t num_bits)
    {
        _numBits = num_bits;
        _words.assign((num_bits + 63) / 64, 0);
    }

    size_t size() const { return _numBits; }

    bool
    test(size_t pos) const
    {
        return (_words[pos >> 6] >> (pos & 63)) & 1ULL;
    }

    void
    set(size_t pos)
    {
        _words[pos >> 6] |= (1ULL << (pos & 63));
    }

    void
    reset(size_t pos)
    {
        _words[pos >> 6] &= ~(1ULL << (pos & 63));
    }

    /**
     * Atomically set a bit.
     * @return true if this call changed the bit from 0 to 1.
     */
    bool
    setAtomic(size_t pos)
    {
        auto *word = reinterpret_cast<std::atomic<uint64_t> *>(
            &_words[pos >> 6]);
        const uint64_t mask = 1ULL << (pos & 63);
        const uint64_t old =
            word->fetch_or(mask, std::memory_order_relaxed);
        return !(old & mask);
    }

    /**
     * Atomically test a bit (race-free against concurrent setAtomic calls).
     */
    bool
    testAtomic(size_t pos) const
    {
        const auto *word = reinterpret_cast<const std::atomic<uint64_t> *>(
            &_words[pos >> 6]);
        const uint64_t mask = 1ULL << (pos & 63);
        return word->load(std::memory_order_relaxed) & mask;
    }

    /** Clear all bits, keeping the size. */
    void
    clear()
    {
        std::fill(_words.begin(), _words.end(), 0);
    }

    /** Number of set bits. */
    size_t count() const;

    /** Invoke @p fn(pos) for every set bit in ascending order. */
    template <typename Fn>
    void
    forEach(Fn &&fn) const
    {
        for (size_t w = 0; w < _words.size(); ++w) {
            uint64_t word = _words[w];
            while (word) {
                const int bit = __builtin_ctzll(word);
                fn(w * 64 + bit);
                word &= word - 1;
            }
        }
    }

    /** Bitwise-or @p other into this bitset. @pre same size. */
    void orWith(const Bitset &other);

    bool operator==(const Bitset &other) const = default;

  private:
    size_t _numBits = 0;
    std::vector<uint64_t> _words;
};

} // namespace ugc

#endif // UGC_SUPPORT_BITSET_H
