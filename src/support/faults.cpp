#include "support/faults.h"

#include <atomic>
#include <map>
#include <mutex>
#include <stdexcept>

#include "support/rng.h"

namespace ugc {
namespace faults {

namespace {

struct SiteState
{
    FaultPlan plan;
    Rng rng{1};
    uint64_t hits = 0;
    uint64_t fired = 0;
};

// Armed sites, guarded by registryMutex(). The serving layer runs queries
// on pool workers, so instrumented sites can hit concurrently; the armed
// path serializes on the mutex (fault runs are diagnostics, not perf
// runs), while the disarmed fast path below stays a single relaxed load.
std::map<std::string, SiteState> &
registry()
{
    static std::map<std::string, SiteState> sites;
    return sites;
}

std::mutex &
registryMutex()
{
    static std::mutex m;
    return m;
}

// Fast-path gate read by the inline-ish shouldFail; avoids the lock and
// map lookup per instrumented hit when nothing is armed (the common case).
std::atomic<bool> g_any_armed{false};

uint64_t
hashName(const std::string &name)
{
    // FNV-1a, mixed into the user seed so distinct sites armed with the
    // same seed draw from distinct streams.
    uint64_t h = 0xcbf29ce484222325ULL;
    for (const char c : name)
        h = (h ^ static_cast<unsigned char>(c)) * 0x100000001b3ULL;
    return h;
}

} // namespace

const std::vector<std::string> &
knownSites()
{
    static const std::vector<std::string> sites = {
        "swarm.task_abort", "gpu.kernel_launch", "hb.dma_error",
        "runtime.alloc_fail", "loader.io_error",
    };
    return sites;
}

bool
isKnownSite(const std::string &site)
{
    for (const auto &known : knownSites())
        if (known == site)
            return true;
    return false;
}

void
arm(const FaultPlan &plan)
{
    if (!isKnownSite(plan.site)) {
        std::string msg = "unknown fault site '" + plan.site + "'; known sites:";
        for (const auto &known : knownSites())
            msg += " " + known;
        throw std::invalid_argument(msg);
    }
    if (plan.nthHit == 0 && !(plan.probability > 0.0 && plan.probability <= 1.0))
        throw std::invalid_argument(
            "fault plan for '" + plan.site +
            "' needs nth>=1 or a probability in (0,1]");

    SiteState state;
    state.plan = plan;
    uint64_t sm = plan.seed ^ hashName(plan.site);
    state.rng = Rng(splitMix64(sm));
    std::lock_guard<std::mutex> lock(registryMutex());
    registry()[plan.site] = std::move(state);
    g_any_armed.store(true, std::memory_order_release);
}

void
disarm(const std::string &site)
{
    std::lock_guard<std::mutex> lock(registryMutex());
    registry().erase(site);
    g_any_armed.store(!registry().empty(), std::memory_order_release);
}

void
clearAll()
{
    std::lock_guard<std::mutex> lock(registryMutex());
    registry().clear();
    g_any_armed.store(false, std::memory_order_release);
}

bool
anyArmed()
{
    return g_any_armed.load(std::memory_order_acquire);
}

bool
shouldFail(const char *site)
{
    if (!g_any_armed.load(std::memory_order_acquire))
        return false;
    std::lock_guard<std::mutex> lock(registryMutex());
    auto it = registry().find(site);
    if (it == registry().end())
        return false;

    SiteState &state = it->second;
    state.hits += 1;
    bool fail = false;
    if (state.plan.nthHit > 0)
        fail = state.hits % state.plan.nthHit == 0;
    else
        fail = state.rng.nextBool(state.plan.probability);
    if (fail)
        state.fired += 1;
    return fail;
}

uint64_t
firedCount(const std::string &site)
{
    std::lock_guard<std::mutex> lock(registryMutex());
    auto it = registry().find(site);
    return it == registry().end() ? 0 : it->second.fired;
}

FaultPlan
parsePlan(const std::string &spec)
{
    FaultPlan plan;
    size_t pos = spec.find(':');
    plan.site = spec.substr(0, pos);
    if (plan.site.empty())
        throw std::invalid_argument("fault plan '" + spec + "' has no site name");

    while (pos != std::string::npos) {
        const size_t start = pos + 1;
        pos = spec.find(':', start);
        const std::string part = spec.substr(
            start, pos == std::string::npos ? std::string::npos : pos - start);
        const size_t eq = part.find('=');
        if (eq == std::string::npos)
            throw std::invalid_argument(
                "fault plan component '" + part + "' is not key=value");
        const std::string key = part.substr(0, eq);
        const std::string value = part.substr(eq + 1);
        if (key != "p" && key != "nth" && key != "seed")
            throw std::invalid_argument("unknown fault plan key '" + key +
                                        "' (expected p, nth, or seed)");
        try {
            if (key == "p")
                plan.probability = std::stod(value);
            else if (key == "nth")
                plan.nthHit = std::stoull(value);
            else
                plan.seed = std::stoull(value);
        } catch (const std::exception &) {
            throw std::invalid_argument(
                "fault plan value '" + value + "' for key '" + key +
                "' is not a number");
        }
    }
    if (plan.nthHit == 0 &&
        !(plan.probability > 0.0 && plan.probability <= 1.0))
        throw std::invalid_argument(
            "fault plan '" + spec +
            "' needs p=<prob in (0,1]> or nth=<hit count >= 1>");
    return plan;
}

} // namespace faults
} // namespace ugc
