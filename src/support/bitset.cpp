#include "support/bitset.h"

#include <cassert>

namespace ugc {

size_t
Bitset::count() const
{
    size_t total = 0;
    for (uint64_t word : _words)
        total += static_cast<size_t>(__builtin_popcountll(word));
    return total;
}

void
Bitset::orWith(const Bitset &other)
{
    assert(_numBits == other._numBits);
    for (size_t w = 0; w < _words.size(); ++w)
        _words[w] |= other._words[w];
}

} // namespace ugc
