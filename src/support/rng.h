/**
 * @file
 * Deterministic pseudo-random number generation.
 *
 * Every stochastic component in UGC (graph generators, simulators that need
 * tie-breaking, sampling-based cache models) draws from these generators so
 * that a fixed seed reproduces results bit-for-bit across runs and platforms.
 */
#ifndef UGC_SUPPORT_RNG_H
#define UGC_SUPPORT_RNG_H

#include <cstdint>

namespace ugc {

/** SplitMix64: used to expand a user seed into generator state. */
inline uint64_t
splitMix64(uint64_t &state)
{
    uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

/**
 * xoshiro256** — fast, high-quality, deterministic PRNG.
 *
 * Satisfies enough of the UniformRandomBitGenerator concept for our use;
 * we deliberately avoid std::mt19937 whose streams are implementation-pinned
 * but slow, and avoid distribution classes whose results vary by libstdc++.
 */
class Rng
{
  public:
    using result_type = uint64_t;

    explicit Rng(uint64_t seed = 0x5eed5eedULL)
    {
        uint64_t sm = seed;
        for (auto &word : _state)
            word = splitMix64(sm);
    }

    static constexpr result_type min() { return 0; }
    static constexpr result_type max() { return ~0ULL; }

    /** Next raw 64-bit value. */
    uint64_t
    next()
    {
        const uint64_t result = rotl(_state[1] * 5, 7) * 9;
        const uint64_t t = _state[1] << 17;
        _state[2] ^= _state[0];
        _state[3] ^= _state[1];
        _state[1] ^= _state[2];
        _state[0] ^= _state[3];
        _state[2] ^= t;
        _state[3] = rotl(_state[3], 45);
        return result;
    }

    uint64_t operator()() { return next(); }

    /** Uniform integer in [0, bound). @pre bound > 0. */
    uint64_t
    nextBounded(uint64_t bound)
    {
        // Lemire's multiply-shift rejection-free mapping is fine here: the
        // tiny modulo bias (< 2^-32 for our bounds) is irrelevant for
        // workload generation and keeps the stream deterministic.
        return static_cast<uint64_t>(
            (static_cast<unsigned __int128>(next()) * bound) >> 64);
    }

    /** Uniform double in [0, 1). */
    double
    nextDouble()
    {
        return static_cast<double>(next() >> 11) * 0x1.0p-53;
    }

    /** Bernoulli trial with probability p of returning true. */
    bool nextBool(double p) { return nextDouble() < p; }

  private:
    static uint64_t
    rotl(uint64_t x, int k)
    {
        return (x << k) | (x >> (64 - k));
    }

    uint64_t _state[4];
};

} // namespace ugc

#endif // UGC_SUPPORT_RNG_H
