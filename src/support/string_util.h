/**
 * @file
 * Small string helpers shared by the frontend and the bench table printers.
 */
#ifndef UGC_SUPPORT_STRING_UTIL_H
#define UGC_SUPPORT_STRING_UTIL_H

#include <string>
#include <vector>

namespace ugc {

/** Split @p text on @p sep, keeping empty fields. */
std::vector<std::string> split(const std::string &text, char sep);

/** Strip leading/trailing whitespace. */
std::string trim(const std::string &text);

/** printf-style formatting into a std::string. */
std::string strprintf(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** True if @p text starts with @p prefix. */
bool startsWith(const std::string &text, const std::string &prefix);

} // namespace ugc

#endif // UGC_SUPPORT_STRING_UTIL_H
