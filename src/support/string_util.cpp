#include "support/string_util.h"

#include <cstdarg>
#include <cstdio>

namespace ugc {

std::vector<std::string>
split(const std::string &text, char sep)
{
    std::vector<std::string> fields;
    size_t start = 0;
    for (;;) {
        const size_t pos = text.find(sep, start);
        if (pos == std::string::npos) {
            fields.push_back(text.substr(start));
            return fields;
        }
        fields.push_back(text.substr(start, pos - start));
        start = pos + 1;
    }
}

std::string
trim(const std::string &text)
{
    const char *ws = " \t\r\n";
    const size_t first = text.find_first_not_of(ws);
    if (first == std::string::npos)
        return "";
    const size_t last = text.find_last_not_of(ws);
    return text.substr(first, last - first + 1);
}

std::string
strprintf(const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    va_list args_copy;
    va_copy(args_copy, args);
    const int needed = std::vsnprintf(nullptr, 0, fmt, args);
    va_end(args);

    std::string result(needed > 0 ? needed : 0, '\0');
    if (needed > 0)
        std::vsnprintf(result.data(), result.size() + 1, fmt, args_copy);
    va_end(args_copy);
    return result;
}

bool
startsWith(const std::string &text, const std::string &prefix)
{
    return text.size() >= prefix.size() &&
           text.compare(0, prefix.size(), prefix) == 0;
}

} // namespace ugc
