/**
 * @file
 * RAII memory-mapped file utility (DESIGN.md §12).
 *
 * MappedFile wraps an mmap(2)-backed read-only view of a file: the
 * mapping lives exactly as long as the object, is move-only (like a
 * unique_ptr over the kernel resource), and exposes the bytes as spans so
 * the graph storage layer can serve zero-copy CSR columns straight out
 * of the page cache. Access-pattern hints (madvise) are forwarded so
 * sequential scans (cache builds) and random traversal (graph queries)
 * can each tell the kernel what is coming.
 *
 * The idiom follows the mapping/pooling utilities of high-performance
 * query engines: map once, hand out typed views, never copy.
 */
#ifndef UGC_SUPPORT_MMAP_H
#define UGC_SUPPORT_MMAP_H

#include <cstddef>
#include <span>
#include <string>

namespace ugc::support {

/** Kernel access-pattern hint for a mapping (subset of madvise). */
enum class MapAdvice {
    Normal,     ///< no special treatment
    Sequential, ///< aggressive readahead (cache builds, checksums)
    Random,     ///< readahead off (pointer-chasing graph traversal)
    WillNeed,   ///< prefault: fault pages in ahead of first access
};

/**
 * A read-only memory-mapped file. Empty files map to a valid object with
 * size() == 0 and data() == nullptr. Failures (missing file, mmap error)
 * throw std::runtime_error carrying the path and errno text.
 */
class MappedFile
{
  public:
    /** An unmapped placeholder; valid() is false. */
    MappedFile() = default;

    /** Map @p path read-only in its entirety. @throws std::runtime_error */
    explicit MappedFile(const std::string &path);

    ~MappedFile();

    MappedFile(MappedFile &&other) noexcept;
    MappedFile &operator=(MappedFile &&other) noexcept;

    MappedFile(const MappedFile &) = delete;
    MappedFile &operator=(const MappedFile &) = delete;

    /** Is a file mapped? (False for default-constructed / moved-from.) */
    bool valid() const { return _data != nullptr || _mappedEmpty; }

    /** First mapped byte (nullptr when empty or unmapped). */
    const std::byte *data() const { return _data; }

    /** Mapped length in bytes. */
    size_t size() const { return _size; }

    const std::string &path() const { return _path; }

    /** Whole mapping as a byte span. */
    std::span<const std::byte> bytes() const { return {_data, _size}; }

    /**
     * Typed view of @p count elements of T starting at byte @p offset.
     * @throws std::out_of_range if the window leaves the mapping or the
     *         offset is misaligned for T.
     */
    template <typename T>
    std::span<const T>
    view(size_t offset, size_t count) const
    {
        checkWindow(offset, count * sizeof(T), alignof(T));
        return {reinterpret_cast<const T *>(_data + offset), count};
    }

    /** Forward an access-pattern hint to the kernel (best effort). */
    void advise(MapAdvice advice) const;

    /** Unmap now (also done by the destructor). Idempotent. */
    void reset();

  private:
    void checkWindow(size_t offset, size_t bytes, size_t alignment) const;

    const std::byte *_data = nullptr;
    size_t _size = 0;
    bool _mappedEmpty = false; ///< distinguishes "empty file" from "none"
    std::string _path;
};

/**
 * Write @p size bytes to @p path atomically: the data lands in a
 * same-directory temporary first and is rename(2)d into place, so
 * concurrent readers (and crashed writers) never observe a partial file.
 * @throws std::runtime_error on I/O failure.
 */
void atomicWriteFile(const std::string &path, const void *data, size_t size);

} // namespace ugc::support

#endif // UGC_SUPPORT_MMAP_H
