#include "support/prof.h"

#include <cmath>
#include <cstdio>
#include <sstream>

namespace ugc::prof {

namespace detail {
thread_local bool g_enabled = false;
thread_local Profile *g_current = nullptr;
} // namespace detail

void
setEnabled(bool on)
{
    detail::g_enabled = on;
}

CounterSet
counterDelta(const CounterSet &after, const CounterSet &before)
{
    CounterSet delta;
    for (const auto &[name, value] : after.all()) {
        const double change = value - before.get(name);
        if (change != 0.0)
            delta.add(name, change);
    }
    return delta;
}

// --- Profile --------------------------------------------------------------

Cycles
Profile::Scope::inclusiveCycles() const
{
    Cycles total = selfCycles;
    for (const auto &child : children)
        total += child->inclusiveCycles();
    return total;
}

Profile::Scope *
Profile::Scope::findChild(const std::string &child_name) const
{
    for (const auto &child : children)
        if (child->name == child_name)
            return child.get();
    return nullptr;
}

Profile::Profile()
{
    _root.name = "total";
    _current = &_root;
}

void
Profile::setMeta(const std::string &key, const std::string &value)
{
    _meta[key] = value;
}

void
Profile::enterScope(const std::string &name)
{
    Scope *child = _current->findChild(name);
    if (!child) {
        auto fresh = std::make_unique<Scope>();
        fresh->name = name;
        fresh->parent = _current;
        child = fresh.get();
        _current->children.push_back(std::move(fresh));
    }
    ++child->count;
    _current = child;
}

void
Profile::exitScope(int64_t wall_ns)
{
    _current->wallNs += wall_ns;
    if (_current->parent)
        _current = _current->parent;
}

void
Profile::addCounter(const std::string &name, double delta)
{
    _current->counters.add(name, delta);
}

void
Profile::addSample(const std::string &name, double value)
{
    _current->summaries[name].add(value);
}

void
Profile::addEvent(TraversalEvent event)
{
    _events.push_back(std::move(event));
}

namespace {

double
sumCounter(const Profile::Scope &scope, const std::string &name)
{
    double total = scope.counters.get(name);
    for (const auto &child : scope.children)
        total += sumCounter(*child, name);
    return total;
}

const Profile::Scope *
findScope(const Profile::Scope &scope, const std::string &name)
{
    if (scope.name == name)
        return &scope;
    for (const auto &child : scope.children)
        if (const Profile::Scope *found = findScope(*child, name))
            return found;
    return nullptr;
}

} // namespace

double
Profile::totalCounter(const std::string &name) const
{
    return sumCounter(_root, name);
}

const Profile::Scope *
Profile::find(const std::string &name) const
{
    return findScope(_root, name);
}

// --- JSON export ----------------------------------------------------------

namespace {

/** Deterministic number formatting: integers print without a fraction,
 *  everything else as shortest round-trippable decimal. */
std::string
fmtNumber(double value)
{
    if (value == std::floor(value) && std::abs(value) < 1e15) {
        char buf[32];
        std::snprintf(buf, sizeof buf, "%lld",
                      static_cast<long long>(value));
        return buf;
    }
    char buf[40];
    std::snprintf(buf, sizeof buf, "%.17g", value);
    return buf;
}

std::string
jsonEscape(const std::string &text)
{
    std::string out;
    out.reserve(text.size());
    for (char c : text) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\t': out += "\\t"; break;
          default: out += c; break;
        }
    }
    return out;
}

bool
isHostEntry(const std::string &name)
{
    return name.rfind("host.", 0) == 0;
}

void
writeCounters(std::ostringstream &out, const CounterSet &counters,
              bool deterministic)
{
    out << '{';
    bool first = true;
    for (const auto &[name, value] : counters.all()) {
        if (deterministic && isHostEntry(name))
            continue;
        if (!first)
            out << ',';
        first = false;
        out << '"' << jsonEscape(name) << "\":" << fmtNumber(value);
    }
    out << '}';
}

void
writeSummaries(std::ostringstream &out,
               const std::map<std::string, Summary> &summaries,
               bool deterministic)
{
    out << '{';
    bool first = true;
    for (const auto &[name, summary] : summaries) {
        if (deterministic && isHostEntry(name))
            continue;
        if (!first)
            out << ',';
        first = false;
        out << '"' << jsonEscape(name) << "\":{\"count\":"
            << summary.count() << ",\"sum\":" << fmtNumber(summary.sum())
            << ",\"mean\":" << fmtNumber(summary.mean())
            << ",\"min\":" << fmtNumber(summary.min())
            << ",\"max\":" << fmtNumber(summary.max()) << '}';
    }
    out << '}';
}

void
writeScope(std::ostringstream &out, const Profile::Scope &scope,
           bool deterministic)
{
    out << "{\"name\":\"" << jsonEscape(scope.name)
        << "\",\"count\":" << scope.count
        << ",\"cycles\":" << scope.inclusiveCycles()
        << ",\"self_cycles\":" << scope.selfCycles;
    if (!deterministic)
        out << ",\"wall_ns\":" << scope.wallNs;
    out << ",\"counters\":";
    writeCounters(out, scope.counters, deterministic);
    out << ",\"summaries\":";
    writeSummaries(out, scope.summaries, deterministic);
    out << ",\"children\":[";
    for (size_t i = 0; i < scope.children.size(); ++i) {
        if (i)
            out << ',';
        writeScope(out, *scope.children[i], deterministic);
    }
    out << "]}";
}

void
writeEvent(std::ostringstream &out, const TraversalEvent &event,
           bool deterministic)
{
    out << "{\"round\":" << event.round << ",\"label\":\""
        << jsonEscape(event.label) << "\",\"direction\":\""
        << (event.direction == Direction::Push ? "push" : "pull")
        << "\",\"input_format\":\"" << formatName(event.inputFormat)
        << "\",\"frontier\":" << event.frontierSize
        << ",\"output\":" << event.outputSize
        << ",\"edges\":" << event.edgesTraversed
        << ",\"cycles\":" << event.cycles << ",\"detail\":";
    writeCounters(out, event.detail, deterministic);
    out << '}';
}

} // namespace

std::string
toJson(const Profile &profile, const JsonOptions &options)
{
    std::ostringstream out;
    out << "{\"schema\":\"ugc.profile.v1\",\"meta\":{";
    bool first = true;
    for (const auto &[key, value] : profile.meta()) {
        if (!first)
            out << ',';
        first = false;
        out << '"' << jsonEscape(key) << "\":\"" << jsonEscape(value)
            << '"';
    }
    out << "},\"total_cycles\":" << profile.totalCycles() << ",\"root\":";
    writeScope(out, profile.root(), options.deterministic);
    out << ",\"events\":[";
    for (size_t i = 0; i < profile.events().size(); ++i) {
        if (i)
            out << ',';
        writeEvent(out, profile.events()[i], options.deterministic);
    }
    out << "]}";
    return out.str();
}

// --- Chrome trace export --------------------------------------------------

namespace {

void
writeTraceScope(std::ostringstream &out, const Profile::Scope &scope,
                Cycles start, bool &first)
{
    if (!first)
        out << ',';
    first = false;
    out << "{\"name\":\"" << jsonEscape(scope.name)
        << "\",\"ph\":\"X\",\"pid\":0,\"tid\":0,\"ts\":" << start
        << ",\"dur\":" << scope.inclusiveCycles()
        << ",\"args\":{\"count\":" << scope.count
        << ",\"self_cycles\":" << scope.selfCycles << "}}";
    // Children laid out sequentially after the scope's own work.
    Cycles cursor = start + scope.selfCycles;
    for (const auto &child : scope.children) {
        writeTraceScope(out, *child, cursor, first);
        cursor += child->inclusiveCycles();
    }
}

} // namespace

std::string
toChromeTrace(const Profile &profile)
{
    std::ostringstream out;
    out << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
    bool first = true;
    writeTraceScope(out, profile.root(), 0, first);
    Cycles cursor = 0;
    for (const TraversalEvent &event : profile.events()) {
        if (!first)
            out << ',';
        first = false;
        out << "{\"name\":\""
            << jsonEscape(event.label.empty() ? "traversal" : event.label)
            << "\",\"ph\":\"X\",\"pid\":0,\"tid\":1,\"ts\":" << cursor
            << ",\"dur\":" << event.cycles << ",\"args\":{\"round\":"
            << event.round << ",\"direction\":\""
            << (event.direction == Direction::Push ? "push" : "pull")
            << "\",\"frontier\":" << event.frontierSize
            << ",\"edges\":" << event.edgesTraversed << "}}";
        cursor += event.cycles;
    }
    out << "]}";
    return out.str();
}

} // namespace ugc::prof
