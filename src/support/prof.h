/**
 * @file
 * ugc::prof — hierarchical, low-overhead profiling and tracing
 * (DESIGN.md §6).
 *
 * A Profile is a tree of named scopes. Scopes are opened with RAII
 * ScopeTimer objects and accumulate simulated cycles (charged explicitly
 * via addCycles), host wall time, labeled counters, and Summary
 * distributions. The execution engine additionally records one
 * TraversalEvent per executed traversal — direction chosen, frontier size
 * and format, edges traversed, and the delta of the machine model's
 * counters across the traversal (kernel launches, task spawns/aborts,
 * DRAM vs. scratchpad accesses, ...).
 *
 * Contracts:
 *  - Zero-cost when off: every recording helper is a single branch on the
 *    active-profile pointer when no profile is installed. Nothing is
 *    allocated, formatted, or locked.
 *  - Deterministic content: exporters can omit the host-volatile fields —
 *    wall time and any counter/summary whose name starts with "host."
 *    (the work-stealing runtime's steal/execute statistics live there) —
 *    so profiles of the same run are bit-identical across thread counts.
 *  - Single-writer: a profile is recorded from the coordinating thread
 *    only. Parallel workers accumulate privately and their owner reports
 *    merged values after the join (see ThreadPool::parallelFor and
 *    ExecEngine's worker contexts).
 *
 * Exporters: structured JSON (golden-testable) and the Chrome
 * chrome://tracing / Perfetto trace-event format, with simulated cycles
 * as the timeline.
 */
#ifndef UGC_SUPPORT_PROF_H
#define UGC_SUPPORT_PROF_H

#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "ir/types.h"
#include "support/stats.h"
#include "support/types.h"

namespace ugc::prof {

class Profile;

namespace detail {
/** Default-enable flag (drives profile creation in the VM layer; see
 *  GraphVM::execute). Thread-local so concurrent queries on a serving
 *  pool each control their own profiling; a run's prof:: calls all happen
 *  on the thread driving its ExecEngine (parallelFor bodies never record
 *  directly — workers report through per-worker stats the master folds
 *  in after the join), so per-thread state covers a whole run. */
extern thread_local bool g_enabled;
/** Profile currently recording ON THIS THREAD, or nullptr. The single
 *  branch every recording helper takes. */
extern thread_local Profile *g_current;
} // namespace detail

/** Should runs create a profile even when the VM was not configured for
 *  profiling? (ugcc --profile, bench harnesses.) */
inline bool
enabled()
{
    return detail::g_enabled;
}

void setEnabled(bool on);

/** True while a profile is installed and recording. */
inline bool
active()
{
    return detail::g_current != nullptr;
}

inline Profile *
current()
{
    return detail::g_current;
}

/** One executed traversal (edge apply or vertex ops), as the engine saw
 *  it. `detail` holds the machine model's counter delta across the
 *  traversal. */
struct TraversalEvent
{
    int64_t round = 0;       ///< loop-iteration index at execution time
    std::string label;       ///< statement label ("s1") or apply function
    Direction direction = Direction::Push;
    VertexSetFormat inputFormat = VertexSetFormat::Sparse;
    VertexId frontierSize = 0;
    VertexId outputSize = 0;
    EdgeId edgesTraversed = 0;
    Cycles cycles = 0;       ///< simulated cycles charged by the model
    CounterSet detail;       ///< backend-specific per-traversal counters
};

/** Delta of two counter snapshots (after - before); used to attribute
 *  machine-model counters to individual traversals. */
CounterSet counterDelta(const CounterSet &after, const CounterSet &before);

class Profile
{
  public:
    struct Scope
    {
        std::string name;
        int64_t count = 0;    ///< times entered
        Cycles selfCycles = 0; ///< charged here, excluding children
        int64_t wallNs = 0;   ///< host wall time (inclusive; volatile)
        CounterSet counters;
        std::map<std::string, Summary> summaries;
        std::vector<std::unique_ptr<Scope>> children; ///< first-entry order
        Scope *parent = nullptr;

        /** selfCycles plus all descendants (child time ⊆ parent time). */
        Cycles inclusiveCycles() const;

        Scope *findChild(const std::string &child_name) const;
    };

    Profile();

    const Scope &root() const { return _root; }
    const std::vector<TraversalEvent> &events() const { return _events; }

    void setMeta(const std::string &key, const std::string &value);
    const std::map<std::string, std::string> &meta() const { return _meta; }

    // --- recording (normally reached through the free helpers) -----------
    /** Open the named child of the current scope, merging with a previous
     *  same-named sibling (counters/cycles accumulate on re-entry). */
    void enterScope(const std::string &name);
    /** Close the current scope, attributing @p wall_ns of host time. */
    void exitScope(int64_t wall_ns);
    void addCycles(Cycles delta) { _current->selfCycles += delta; }
    void addCounter(const std::string &name, double delta);
    void addSample(const std::string &name, double value);
    void addEvent(TraversalEvent event);

    // --- queries ----------------------------------------------------------
    /** Total simulated cycles of the run (root's inclusive time). */
    Cycles totalCycles() const { return _root.inclusiveCycles(); }
    /** Sum of a counter over every scope in the tree. */
    double totalCounter(const std::string &name) const;
    /** First scope with this name, depth-first; nullptr when absent. */
    const Scope *find(const std::string &name) const;

  private:
    Scope _root;
    Scope *_current;
    std::vector<TraversalEvent> _events;
    std::map<std::string, std::string> _meta;
};

// --- recording helpers (single-branch no-ops when no profile is active) ---

inline void
addCycles(Cycles delta)
{
    if (Profile *p = detail::g_current)
        p->addCycles(delta);
}

inline void
counter(const std::string &name, double delta = 1.0)
{
    if (Profile *p = detail::g_current)
        p->addCounter(name, delta);
}

/** Literal-name overload: no std::string is built when inactive. */
inline void
counter(const char *name, double delta = 1.0)
{
    if (Profile *p = detail::g_current)
        p->addCounter(name, delta);
}

inline void
sample(const std::string &name, double value)
{
    if (Profile *p = detail::g_current)
        p->addSample(name, value);
}

inline void
sample(const char *name, double value)
{
    if (Profile *p = detail::g_current)
        p->addSample(name, value);
}

inline void
traversalEvent(TraversalEvent event)
{
    if (Profile *p = detail::g_current)
        p->addEvent(std::move(event));
}

/** RAII: install @p profile as the recording target. */
class ActiveProfile
{
  public:
    explicit ActiveProfile(Profile *profile) : _prev(detail::g_current)
    {
        detail::g_current = profile;
    }
    ~ActiveProfile() { detail::g_current = _prev; }

    ActiveProfile(const ActiveProfile &) = delete;
    ActiveProfile &operator=(const ActiveProfile &) = delete;

  private:
    Profile *_prev;
};

/** RAII: set the process-wide enable flag for a region. */
class EnabledGuard
{
  public:
    explicit EnabledGuard(bool on) : _prev(detail::g_enabled)
    {
        detail::g_enabled = on;
    }
    ~EnabledGuard() { detail::g_enabled = _prev; }

    EnabledGuard(const EnabledGuard &) = delete;
    EnabledGuard &operator=(const EnabledGuard &) = delete;

  private:
    bool _prev;
};

/** RAII nested scope: enters on construction, exits (attributing wall
 *  time) on destruction. No-op when no profile is active. */
class ScopeTimer
{
  public:
    explicit ScopeTimer(std::string name) : _profile(detail::g_current)
    {
        if (!_profile)
            return;
        _profile->enterScope(name);
        _start = std::chrono::steady_clock::now();
    }
    ~ScopeTimer()
    {
        if (!_profile)
            return;
        const auto elapsed = std::chrono::steady_clock::now() - _start;
        _profile->exitScope(
            std::chrono::duration_cast<std::chrono::nanoseconds>(elapsed)
                .count());
    }

    ScopeTimer(const ScopeTimer &) = delete;
    ScopeTimer &operator=(const ScopeTimer &) = delete;

  private:
    Profile *_profile;
    std::chrono::steady_clock::time_point _start;
};

// --- exporters ------------------------------------------------------------

struct JsonOptions
{
    /** Omit host-volatile content: wall_ns fields and every counter or
     *  summary whose name starts with "host.". With this set, profiles of
     *  the same run are bit-identical across host thread counts. */
    bool deterministic = false;
};

/** Structured JSON: {"schema":"ugc.profile.v1", meta, root scope tree,
 *  traversal events}. Key order and number formatting are deterministic. */
std::string toJson(const Profile &profile, const JsonOptions &options = {});

/** Chrome trace-event JSON (load in chrome://tracing or Perfetto).
 *  Simulated cycles serve as microsecond timestamps: scopes become
 *  complete ("X") slices on tid 0, traversal events slices on tid 1. */
std::string toChromeTrace(const Profile &profile);

} // namespace ugc::prof

#endif // UGC_SUPPORT_PROF_H
