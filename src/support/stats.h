/**
 * @file
 * Lightweight counters and distribution summaries used by the machine
 * models and the benchmark harnesses.
 */
#ifndef UGC_SUPPORT_STATS_H
#define UGC_SUPPORT_STATS_H

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>
#include <map>
#include <string>
#include <vector>

namespace ugc {

/** Streaming summary of a scalar distribution (no sample storage). */
class Summary
{
  public:
    void
    add(double value)
    {
        ++_count;
        _sum += value;
        _sumSq += value * value;
        _min = std::min(_min, value);
        _max = std::max(_max, value);
    }

    uint64_t count() const { return _count; }
    double sum() const { return _sum; }
    double mean() const { return _count ? _sum / _count : 0.0; }
    double min() const { return _count ? _min : 0.0; }
    double max() const { return _count ? _max : 0.0; }

    double
    stddev() const
    {
        if (_count < 2)
            return 0.0;
        const double m = mean();
        return std::sqrt(std::max(0.0, _sumSq / _count - m * m));
    }

  private:
    uint64_t _count = 0;
    double _sum = 0.0;
    double _sumSq = 0.0;
    double _min = std::numeric_limits<double>::infinity();
    double _max = -std::numeric_limits<double>::infinity();
};

/** Named counter bag; used for ad-hoc machine-model statistics. */
class CounterSet
{
  public:
    void add(const std::string &name, double delta = 1.0)
    {
        _counters[name] += delta;
    }

    double get(const std::string &name) const
    {
        auto it = _counters.find(name);
        return it == _counters.end() ? 0.0 : it->second;
    }

    const std::map<std::string, double> &all() const { return _counters; }

    void
    merge(const CounterSet &other)
    {
        for (const auto &[name, value] : other._counters)
            _counters[name] += value;
    }

  private:
    std::map<std::string, double> _counters;
};

/** Geometric mean of a vector of positive ratios (used by bench reports). */
inline double
geoMean(const std::vector<double> &values)
{
    if (values.empty())
        return 0.0;
    double log_sum = 0.0;
    for (double v : values)
        log_sum += std::log(v);
    return std::exp(log_sum / static_cast<double>(values.size()));
}

} // namespace ugc

#endif // UGC_SUPPORT_STATS_H
