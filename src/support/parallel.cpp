#include "support/parallel.h"

#include <algorithm>

namespace ugc {

ThreadPool::ThreadPool(unsigned num_threads)
    : _numThreads(num_threads ? num_threads
                              : std::max(1u, std::thread::hardware_concurrency()))
{
}

ThreadPool::~ThreadPool()
{
    {
        std::lock_guard<std::mutex> lock(_mutex);
        _shutdown = true;
    }
    _wakeWorkers.notify_all();
    for (auto &worker : _workers)
        worker.join();
}

void
ThreadPool::start()
{
    _started = true;
    // Worker 0 is the calling thread; spawn the rest.
    for (unsigned i = 1; i < _numThreads; ++i)
        _workers.emplace_back([this, i] { workerLoop(i); });
}

void
ThreadPool::workerLoop(unsigned index)
{
    uint64_t seen_generation = 0;
    for (;;) {
        const std::function<void(int64_t, int64_t)> *body;
        int64_t begin, end;
        {
            std::unique_lock<std::mutex> lock(_mutex);
            _wakeWorkers.wait(lock, [&] {
                return _shutdown || _generation != seen_generation;
            });
            if (_shutdown)
                return;
            seen_generation = _generation;
            body = _body;
            begin = _jobBegin;
            end = _jobEnd;
        }
        const int64_t span = end - begin;
        const int64_t chunk = (span + _numThreads - 1) / _numThreads;
        const int64_t lo = begin + chunk * index;
        const int64_t hi = std::min<int64_t>(lo + chunk, end);
        if (lo < hi)
            (*body)(lo, hi);
        {
            std::lock_guard<std::mutex> lock(_mutex);
            if (--_remaining == 0)
                _wakeMaster.notify_one();
        }
    }
}

void
ThreadPool::parallelFor(int64_t begin, int64_t end,
                        const std::function<void(int64_t, int64_t)> &body)
{
    if (end <= begin)
        return;
    if (_numThreads == 1 || end - begin == 1) {
        body(begin, end);
        return;
    }
    {
        std::lock_guard<std::mutex> lock(_mutex);
        if (!_started)
            start();
        _body = &body;
        _jobBegin = begin;
        _jobEnd = end;
        _remaining = _numThreads - 1;
        ++_generation;
    }
    _wakeWorkers.notify_all();

    // The calling thread takes chunk 0.
    const int64_t span = end - begin;
    const int64_t chunk = (span + _numThreads - 1) / _numThreads;
    body(begin, std::min<int64_t>(begin + chunk, end));

    std::unique_lock<std::mutex> lock(_mutex);
    _wakeMaster.wait(lock, [&] { return _remaining == 0; });
}

ThreadPool &
ThreadPool::global()
{
    static ThreadPool pool;
    return pool;
}

void
parallelFor(int64_t begin, int64_t end,
            const std::function<void(int64_t, int64_t)> &body)
{
    ThreadPool::global().parallelFor(begin, end, body);
}

} // namespace ugc
