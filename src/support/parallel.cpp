#include "support/parallel.h"

#include <algorithm>
#include <stdexcept>

#include "support/prof.h"

namespace ugc {

namespace {
/** Set for the lifetime of any pool-owned thread (fork-join worker or
 *  task runner); lets callers detect they are already inside a pool. */
thread_local bool t_on_pool_worker = false;
} // namespace

ThreadPool::ThreadPool(unsigned num_threads)
    : _numThreads(num_threads ? num_threads
                              : std::max(1u, std::thread::hardware_concurrency()))
{
}

ThreadPool::~ThreadPool()
{
    {
        std::lock_guard<std::mutex> lock(_mutex);
        _shutdown = true;
    }
    _wakeWorkers.notify_all();
    for (auto &worker : _workers)
        worker.join();
}

void
ThreadPool::start()
{
    _started = true;
    _deques = std::vector<WorkDeque>(_numThreads);
    _stats.assign(_numThreads, WorkerStats{});
    // Worker 0 is the calling thread; spawn the rest.
    for (unsigned i = 1; i < _numThreads; ++i)
        _workers.emplace_back([this, i] { workerLoop(i); });
}

void
ThreadPool::workerLoop(unsigned index)
{
    t_on_pool_worker = true;
    uint64_t seen_generation = 0;
    for (;;) {
        {
            std::unique_lock<std::mutex> lock(_mutex);
            _wakeWorkers.wait(lock, [&] {
                return _shutdown || _generation != seen_generation ||
                       !_taskQueue.empty();
            });
            if (_shutdown)
                return;
            // Prefer the fork-join job: parallelFor rounds are short and
            // latency-sensitive, tasks are long-running queries.
            if (_generation == seen_generation) {
                runOneTask(lock);
                continue;
            }
            seen_generation = _generation;
        }
        runWorker(index);
        {
            std::lock_guard<std::mutex> lock(_mutex);
            if (--_remaining == 0)
                _wakeMaster.notify_all();
        }
    }
}

/** Pop and run one task. Called with @p lock held; releases it around the
 *  task body. @return false when the queue was empty. */
bool
ThreadPool::runOneTask(std::unique_lock<std::mutex> &lock)
{
    if (_taskQueue.empty())
        return false;
    std::function<void()> task = std::move(_taskQueue.front());
    _taskQueue.pop_front();
    lock.unlock();
    task();
    lock.lock();
    if (--_tasksActive == 0)
        _wakeMaster.notify_all();
    return true;
}

/** Dedicated task runner: guarantees task progress even when every
 *  fork-join worker is parked in a job (or the pool has size 1). */
void
ThreadPool::taskLoop()
{
    t_on_pool_worker = true;
    std::unique_lock<std::mutex> lock(_mutex);
    for (;;) {
        _wakeWorkers.wait(lock,
                          [&] { return _shutdown || !_taskQueue.empty(); });
        if (_shutdown)
            return;
        runOneTask(lock);
    }
}

void
ThreadPool::submit(std::function<void()> task)
{
    {
        std::lock_guard<std::mutex> lock(_mutex);
        if (_shutdown)
            throw std::runtime_error("ThreadPool: submit after shutdown");
        if (!_started)
            start();
        if (!_taskRunnerStarted) {
            _taskRunnerStarted = true;
            _workers.emplace_back([this] { taskLoop(); });
        }
        _taskQueue.push_back(std::move(task));
        ++_tasksActive;
    }
    _wakeWorkers.notify_all();
}

void
ThreadPool::waitIdle()
{
    std::unique_lock<std::mutex> lock(_mutex);
    _wakeMaster.wait(lock, [&] { return _tasksActive == 0; });
}

size_t
ThreadPool::tasksInFlight() const
{
    std::lock_guard<std::mutex> lock(_mutex);
    return _tasksActive;
}

bool
ThreadPool::onWorkerThread()
{
    return t_on_pool_worker;
}

/** Drain the own deque, then steal until every deque is empty. */
void
ThreadPool::runWorker(unsigned index)
{
    const WorkerBody &body = *_body;
    const int64_t begin = _jobBegin;
    const int64_t end = _jobEnd;
    const int64_t grain = _jobGrain;
    auto exec = [&](int64_t chunk) {
        const int64_t lo = begin + chunk * grain;
        body(index, lo, std::min<int64_t>(lo + grain, end));
    };

    WorkDeque &own = _deques[index];
    WorkerStats &stats = _stats[index];
    int64_t chunk;
    for (;;) {
        while (own.take(chunk)) {
            exec(chunk);
            ++stats.chunksExecuted;
        }
        // Own deque drained: sweep the victims. Stolen chunks are executed
        // directly (never re-enqueued), so deques only ever drain.
        bool executed = false;
        bool saw_abort = false;
        for (unsigned k = 1; k < _numThreads; ++k) {
            WorkDeque &victim = _deques[(index + k) % _numThreads];
            const WorkDeque::Steal result = victim.steal(chunk);
            if (result == WorkDeque::Steal::Success) {
                exec(chunk);
                ++stats.chunksExecuted;
                ++stats.steals;
                executed = true;
                break;
            }
            if (result == WorkDeque::Steal::Abort) {
                saw_abort = true;
                ++stats.stealAborts;
            }
        }
        if (executed)
            continue;
        if (!saw_abort)
            return; // every deque observed empty — job done for this worker
        std::this_thread::yield(); // lost a steal race; try again
    }
}

void
ThreadPool::parallelFor(int64_t begin, int64_t end, int64_t grain,
                        const WorkerBody &body)
{
    if (end <= begin)
        return;
    const int64_t span = end - begin;
    if (grain <= 0)
        grain = std::max<int64_t>(1, span / (static_cast<int64_t>(_numThreads) * 8));
    const int64_t num_chunks = (span + grain - 1) / grain;
    if (_numThreads == 1 || num_chunks == 1) {
        body(0, begin, end);
        return;
    }
    {
        std::lock_guard<std::mutex> lock(_mutex);
        if (!_started)
            start();
        // Seed each worker's deque with a contiguous run of chunks.
        for (unsigned w = 0; w < _numThreads; ++w) {
            const int64_t first = num_chunks * w / _numThreads;
            const int64_t last = num_chunks * (w + 1) / _numThreads;
            _deques[w].fill(first, last - first);
            _stats[w] = WorkerStats{};
        }
        _body = &body;
        _jobBegin = begin;
        _jobEnd = end;
        _jobGrain = grain;
        _remaining = _numThreads - 1;
        ++_generation;
    }
    _wakeWorkers.notify_all();

    runWorker(0);

    {
        std::unique_lock<std::mutex> lock(_mutex);
        _wakeMaster.wait(lock, [&] { return _remaining == 0; });
    }

    // The join above orders every worker's stats writes before these
    // reads. Host-runtime statistics vary with thread count and steal
    // races, so they live under the host.* prefix that the deterministic
    // exporter excludes.
    if (prof::active()) {
        uint64_t chunks = 0, steals = 0, aborts = 0;
        for (const WorkerStats &stats : _stats) {
            chunks += stats.chunksExecuted;
            steals += stats.steals;
            aborts += stats.stealAborts;
            prof::sample("host.worker_chunks",
                         static_cast<double>(stats.chunksExecuted));
        }
        prof::counter("host.chunks", static_cast<double>(chunks));
        prof::counter("host.steals", static_cast<double>(steals));
        prof::counter("host.steal_aborts", static_cast<double>(aborts));
        prof::counter("host.parallel_jobs");
    }
}

void
ThreadPool::parallelFor(int64_t begin, int64_t end,
                        const std::function<void(int64_t, int64_t)> &body)
{
    if (end <= begin)
        return;
    if (_numThreads == 1 || end - begin == 1) {
        body(begin, end);
        return;
    }
    const int64_t chunk =
        (end - begin + _numThreads - 1) / _numThreads;
    const WorkerBody wrapped = [&body](unsigned, int64_t lo, int64_t hi) {
        body(lo, hi);
    };
    parallelFor(begin, end, chunk, wrapped);
}

ThreadPool &
ThreadPool::global()
{
    static ThreadPool pool;
    return pool;
}

void
parallelFor(int64_t begin, int64_t end,
            const std::function<void(int64_t, int64_t)> &body)
{
    ThreadPool::global().parallelFor(begin, end, body);
}

void
parallelFor(int64_t begin, int64_t end, int64_t grain,
            const ThreadPool::WorkerBody &body)
{
    ThreadPool::global().parallelFor(begin, end, grain, body);
}

} // namespace ugc
