/**
 * @file
 * Deterministic fault injection (DESIGN.md §8).
 *
 * A small global registry of *named fault sites*. Code that can plausibly
 * fail on real hardware asks `faults::shouldFail("gpu.kernel_launch")` at
 * the point where the failure would occur; the call is a single predicted
 * branch when no plan is armed, so instrumented sites cost nothing in
 * normal runs.
 *
 * A site fires according to an armed FaultPlan: either every Nth hit
 * (`nthHit`) or with a given probability drawn from a per-site
 * deterministic Rng seeded from `seed` mixed with the site name. Arming a
 * plan resets the site's hit counter and Rng state, so two runs armed with
 * the same plan see bit-identical fault streams — the property the
 * determinism tests (tests/vm/test_determinism.cpp) rely on.
 *
 * Threading: the disarmed fast path is a single relaxed atomic load (free
 * in normal runs); the armed path serializes on an internal mutex so the
 * serving layer — which executes queries on pool workers — can hit
 * instrumented sites concurrently during chaos runs. Determinism of the
 * per-site fault stream is preserved per site, but when several threads
 * hit the *same* armed site the interleaving decides which thread observes
 * which draw; chaos assertions therefore count failures rather than
 * predicting which query absorbs them.
 */
#ifndef UGC_SUPPORT_FAULTS_H
#define UGC_SUPPORT_FAULTS_H

#include <cstdint>
#include <string>
#include <vector>

namespace ugc {
namespace faults {

/**
 * Arming description of one fault site. Exactly one of `probability` /
 * `nthHit` should be set: probability in (0, 1] makes each hit fail with
 * that chance (seeded, deterministic); nthHit >= 1 makes exactly every
 * Nth hit fail.
 */
struct FaultPlan
{
    std::string site;
    double probability = 0.0;
    uint64_t nthHit = 0;
    uint64_t seed = 1;
};

/** The sites instrumented across the codebase, for --help and errors. */
const std::vector<std::string> &knownSites();

/** True if @p site names an instrumented fault site. */
bool isKnownSite(const std::string &site);

/**
 * Arm @p plan, replacing any plan on the same site and resetting that
 * site's hit counter and random stream. Throws std::invalid_argument for
 * an unknown site or a plan with neither probability nor nthHit.
 */
void arm(const FaultPlan &plan);

/** Disarm one site (no-op if it is not armed). */
void disarm(const std::string &site);

/** Disarm all sites and reset all counters. */
void clearAll();

/** True if any site is armed (fast inline gate for instrumented code). */
bool anyArmed();

/**
 * Record a hit on @p site and return true if the armed plan says this hit
 * fails. Returns false when nothing is armed for the site. The caller
 * decides what failure *means* (retry, abort, throw).
 */
bool shouldFail(const char *site);

/** Total failures fired on @p site since it was last armed. */
uint64_t firedCount(const std::string &site);

/**
 * Parse a ugcc-style plan spec: `site:p=0.1:seed=7` or `site:nth=3:seed=7`
 * (seed optional, defaults to 1). Throws std::invalid_argument with a
 * message naming the bad component on malformed input.
 */
FaultPlan parsePlan(const std::string &spec);

/** RAII helper for tests: arms a plan, disarms the site on destruction. */
class ScopedPlan
{
  public:
    explicit ScopedPlan(const FaultPlan &plan) : _site(plan.site)
    {
        arm(plan);
    }
    ~ScopedPlan() { disarm(_site); }
    ScopedPlan(const ScopedPlan &) = delete;
    ScopedPlan &operator=(const ScopedPlan &) = delete;

  private:
    std::string _site;
};

} // namespace faults
} // namespace ugc

#endif // UGC_SUPPORT_FAULTS_H
