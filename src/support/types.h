/**
 * @file
 * Fundamental scalar types shared by every UGC module.
 */
#ifndef UGC_SUPPORT_TYPES_H
#define UGC_SUPPORT_TYPES_H

#include <cstdint>

namespace ugc {

/** Identifier of a vertex; graphs are limited to 2^31-1 vertices. */
using VertexId = int32_t;

/** Identifier/count of edges; 64-bit because |E| can exceed 2^31. */
using EdgeId = int64_t;

/** Edge weight. Integer weights (as in the DIMACS road graphs). */
using Weight = int32_t;

/** Logical byte address inside a machine model's address space. */
using Addr = uint64_t;

/** Simulated clock cycles. */
using Cycles = uint64_t;

/** Sentinel used for "not yet visited" vertex properties. */
inline constexpr VertexId kNoVertex = -1;

/** Sentinel "infinite" distance for shortest-path style algorithms. */
inline constexpr int64_t kInfDist = (1LL << 60);

} // namespace ugc

#endif // UGC_SUPPORT_TYPES_H
