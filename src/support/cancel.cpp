#include "support/cancel.h"

namespace ugc {

namespace {

int64_t
toNs(std::chrono::steady_clock::time_point when)
{
    const int64_t ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
                           when.time_since_epoch())
                           .count();
    // 0 means "no deadline"; a deadline landing exactly on the epoch is
    // nudged by a nanosecond rather than silently disarmed.
    return ns == 0 ? 1 : ns;
}

} // namespace

void
CancelToken::armDeadline(std::chrono::steady_clock::time_point when)
{
    _deadlineNs.store(toNs(when), std::memory_order_relaxed);
}

void
CancelToken::armDeadlineIn(int64_t ms)
{
    armDeadline(std::chrono::steady_clock::now() +
                std::chrono::milliseconds(ms));
}

bool
CancelToken::deadlineExpired() const
{
    const int64_t deadline = _deadlineNs.load(std::memory_order_relaxed);
    if (deadline == 0)
        return false;
    const int64_t now =
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count();
    return now >= deadline;
}

CancelToken::Trip
CancelToken::poll() const
{
    if (cancelled())
        return Trip::Cancelled;
    if (deadlineExpired())
        return Trip::Deadline;
    return Trip::None;
}

} // namespace ugc
