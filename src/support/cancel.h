/**
 * @file
 * Cooperative cancellation and deadlines (DESIGN.md §13).
 *
 * A CancelToken is the one-way stop signal of a request: the serving layer
 * (or any caller) arms it — an explicit cancel() or an absolute deadline —
 * and the execution engine polls it at bounded intervals (round tops and,
 * amortized every kCancelPollEdges traversed edges, inside traversal inner
 * loops). A tripped poll surfaces as a structured GuardError
 * (RunError::Kind::Cancelled / WallTimeout) carrying round/edge progress,
 * never as a torn result.
 *
 * Unlike the fault-injection registry (support/faults.h), tokens ARE
 * polled from worker-pool threads: all state is atomic, and polls are
 * relaxed loads — a single predictable branch when no token is attached,
 * mirroring the disarmed fault-site fast path.
 */
#ifndef UGC_SUPPORT_CANCEL_H
#define UGC_SUPPORT_CANCEL_H

#include <atomic>
#include <chrono>
#include <cstdint>

namespace ugc {

/** Amortization grain of in-round cancellation polls: each engine worker
 *  checks its token at least once per this many traversed edges (plus the
 *  adjacency list of the vertex in progress). This bounds cancellation
 *  latency to a small multiple of the per-edge cost. */
inline constexpr int64_t kCancelPollEdges = 8192;

/**
 * Shared stop signal of one request. Thread-safe and allocation-free:
 * writers (cancel(), armDeadline*) may race with any number of polling
 * readers. Tokens are single-trip — once cancelled or past the deadline
 * they stay tripped; reuse a fresh token per request.
 */
class CancelToken
{
  public:
    /** Why a poll tripped. */
    enum class Trip : uint8_t {
        None = 0,
        Cancelled, ///< explicit cancel()
        Deadline,  ///< armed deadline passed
    };

    /** Request cancellation. Safe from any thread; idempotent. */
    void
    cancel()
    {
        _cancelled.store(true, std::memory_order_relaxed);
    }

    bool
    cancelled() const
    {
        return _cancelled.load(std::memory_order_relaxed);
    }

    /** Arm an absolute steady-clock deadline. Re-arming moves it; arm
     *  before handing the token to a running query (late re-arms are
     *  honored only at the next poll). */
    void armDeadline(std::chrono::steady_clock::time_point when);

    /** armDeadline at now + @p ms (ms <= 0 arms an already-expired
     *  deadline: the next poll trips). */
    void armDeadlineIn(int64_t ms);

    bool
    hasDeadline() const
    {
        return _deadlineNs.load(std::memory_order_relaxed) != 0;
    }

    /** True once an armed deadline lies in the past. */
    bool deadlineExpired() const;

    /** One poll: cancelled beats deadline; Trip::None when unarmed or not
     *  yet tripped. Cheap enough for amortized inner-loop use. */
    Trip poll() const;

  private:
    std::atomic<bool> _cancelled{false};
    /** Deadline in ns since the steady_clock epoch; 0 = none armed. */
    std::atomic<int64_t> _deadlineNs{0};
};

} // namespace ugc

#endif // UGC_SUPPORT_CANCEL_H
