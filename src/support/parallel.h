/**
 * @file
 * Minimal thread pool and parallel-for used by the CPU GraphVM's native
 * execution path.
 *
 * The simulated backends (GPU/Swarm/HammerBlade) model parallelism inside
 * their machine models and do not use host threads; this pool exists so the
 * CPU backend can execute for real, mirroring the Cilk/OpenMP runtimes the
 * paper's CPU GraphVM generates calls into.
 */
#ifndef UGC_SUPPORT_PARALLEL_H
#define UGC_SUPPORT_PARALLEL_H

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace ugc {

/**
 * A fork-join thread pool with a fixed worker count.
 *
 * Workers are lazily started on the first parallel call and joined on
 * destruction. A pool of size 1 runs inline (important for deterministic
 * test environments and single-core machines).
 */
class ThreadPool
{
  public:
    /** @param num_threads 0 means hardware_concurrency(). */
    explicit ThreadPool(unsigned num_threads = 0);
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    unsigned numThreads() const { return _numThreads; }

    /**
     * Run @p body(chunk_begin, chunk_end) over [begin, end) split into
     * roughly even contiguous chunks, one per worker, and wait for all.
     */
    void parallelFor(int64_t begin, int64_t end,
                     const std::function<void(int64_t, int64_t)> &body);

    /** Process-wide pool shared by callers that do not own one. */
    static ThreadPool &global();

  private:
    void start();
    void workerLoop(unsigned index);

    unsigned _numThreads;
    std::vector<std::thread> _workers;
    std::mutex _mutex;
    std::condition_variable _wakeWorkers;
    std::condition_variable _wakeMaster;

    // Current job, guarded by _mutex.
    const std::function<void(int64_t, int64_t)> *_body = nullptr;
    int64_t _jobBegin = 0;
    int64_t _jobEnd = 0;
    uint64_t _generation = 0;
    unsigned _remaining = 0;
    bool _shutdown = false;
    bool _started = false;
};

/** Convenience wrapper over ThreadPool::global(). */
void parallelFor(int64_t begin, int64_t end,
                 const std::function<void(int64_t, int64_t)> &body);

} // namespace ugc

#endif // UGC_SUPPORT_PARALLEL_H
