/**
 * @file
 * Work-stealing thread pool and parallel-for used by the CPU GraphVM's
 * native execution path.
 *
 * The simulated backends (GPU/Swarm/HammerBlade) model parallelism inside
 * their machine models and do not use host threads; this pool exists so the
 * CPU backend can execute for real, mirroring the Cilk/OpenMP runtimes the
 * paper's CPU GraphVM generates calls into.
 *
 * The pool divides an iteration range into grain-sized chunks, seeds each
 * worker's Chase–Lev-style deque with a contiguous run of chunks, and lets
 * idle workers steal from the far end of a victim's run. Chunks therefore
 * migrate under load imbalance (one heavy chunk no longer serializes the
 * round) while the common case keeps each worker on a contiguous,
 * cache-friendly span. Bodies receive an explicit worker index so callers
 * can keep per-worker state without deriving thread ids from chunk bounds.
 */
#ifndef UGC_SUPPORT_PARALLEL_H
#define UGC_SUPPORT_PARALLEL_H

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace ugc {

/**
 * A Chase–Lev-style deque of chunk indices: the owner pushes/pops at the
 * bottom, thieves race on the top via CAS.
 *
 * The pool pre-fills every deque before a job is published (workers are
 * released by the job mutex/condvar, which orders the fill), so the buffer
 * never grows concurrently; only the top/bottom cursors are contended.
 * All cursor operations are seq_cst: chunk executions are coarse, and the
 * simple memory order keeps the take/steal race obviously correct (and
 * ThreadSanitizer-friendly — standalone fences are not modeled by TSan).
 */
class alignas(64) WorkDeque
{
  public:
    enum class Steal { Success, Empty, Abort };

    /** Replace the contents with @p count chunk ids starting at @p first,
     *  stored so the owner pops them in ascending order. Owner-side setup
     *  only; must not race with take/steal. */
    void
    fill(int64_t first, int64_t count)
    {
        _buf.resize(static_cast<size_t>(count));
        // Descending storage: the owner's bottom end yields the lowest id
        // (preserving ascending traversal order), thieves take the highest.
        for (int64_t k = 0; k < count; ++k)
            _buf[static_cast<size_t>(k)] = first + count - 1 - k;
        _top.store(0);
        _bottom.store(count);
    }

    /** Owner-side pop. @return false when the deque is empty. */
    bool
    take(int64_t &out)
    {
        const int64_t b = _bottom.load() - 1;
        _bottom.store(b);
        int64_t t = _top.load();
        if (t <= b) {
            out = _buf[static_cast<size_t>(b)];
            if (t == b) {
                // Last element: race the thieves for it.
                const bool won = _top.compare_exchange_strong(t, t + 1);
                _bottom.store(b + 1);
                return won;
            }
            return true;
        }
        _bottom.store(b + 1);
        return false;
    }

    /** Thief-side pop from the top. Abort means a race was lost and the
     *  victim may still have work — retry. */
    Steal
    steal(int64_t &out)
    {
        int64_t t = _top.load();
        const int64_t b = _bottom.load();
        if (t >= b)
            return Steal::Empty;
        out = _buf[static_cast<size_t>(t)];
        if (!_top.compare_exchange_strong(t, t + 1))
            return Steal::Abort;
        return Steal::Success;
    }

  private:
    std::atomic<int64_t> _top{0};
    std::atomic<int64_t> _bottom{0};
    std::vector<int64_t> _buf;
};

/**
 * A fork-join thread pool with a fixed worker count, doubling as a task
 * executor for the serving layer.
 *
 * Workers are lazily started on the first parallel call and joined on
 * destruction. A pool of size 1 runs inline (important for deterministic
 * test environments and single-core machines). Nested parallelFor calls
 * from inside a body are not supported.
 *
 * Task mode (submit/waitIdle) runs independent closures on the same
 * workers — the `start_query`/`end_query`-over-a-static-pool shape the
 * serving layer needs: concurrent queries share one worker pool instead of
 * each spawning their own. Tasks and parallelFor jobs coexist: a worker
 * prefers a published job (short, latency-sensitive) and otherwise drains
 * the task queue; one dedicated runner thread guarantees task progress
 * even while every fork-join worker is busy. A task MUST NOT call
 * parallelFor or waitIdle on the pool executing it — fork-join inside a
 * task would wait on the very workers the tasks occupy.
 */
class ThreadPool
{
  public:
    /** Per-worker execution statistics for one parallelFor job. Each entry
     *  is written only by its owning worker; the master reads them after
     *  the join (ordered by the _remaining handshake) and reports them to
     *  the active profile under host.* names. */
    struct WorkerStats
    {
        uint64_t chunksExecuted = 0;
        uint64_t steals = 0;      ///< chunks taken from another deque
        uint64_t stealAborts = 0; ///< lost steal races
    };

    /** Body of a work-stealing loop: (worker, chunk_begin, chunk_end).
     *  The worker index identifies which of the pool's numThreads()
     *  workers executes the chunk; chunks migrate between workers under
     *  stealing, but no two workers ever run the same chunk, and a worker
     *  runs one chunk at a time. */
    using WorkerBody = std::function<void(unsigned, int64_t, int64_t)>;

    /** @param num_threads 0 means hardware_concurrency(). */
    explicit ThreadPool(unsigned num_threads = 0);
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    unsigned numThreads() const { return _numThreads; }

    /**
     * Run @p body over [begin, end) split into chunks of at most @p grain
     * iterations, distributed over the workers' deques and rebalanced by
     * stealing. @p grain <= 0 selects an automatic grain (several chunks
     * per worker). With one thread (or a single chunk) the whole range
     * runs inline as body(0, begin, end).
     */
    void parallelFor(int64_t begin, int64_t end, int64_t grain,
                     const WorkerBody &body);

    /**
     * Worker-index-free convenience: split [begin, end) into one chunk per
     * worker (rebalanced by stealing like the grained overload).
     */
    void parallelFor(int64_t begin, int64_t end,
                     const std::function<void(int64_t, int64_t)> &body);

    /**
     * Enqueue an independent closure for asynchronous execution on the
     * pool's workers (first use spawns the dedicated task runner, so a
     * pool of size 1 still makes progress). Tasks run in submission order
     * but complete in any order. @throws std::runtime_error after
     * shutdown began.
     */
    void submit(std::function<void()> task);

    /** Block until every submitted task has finished. Must not be called
     *  from inside a task of this pool. */
    void waitIdle();

    /** Tasks submitted but not yet finished (queued + running). */
    size_t tasksInFlight() const;

    /** True on a thread currently owned by any ThreadPool (a fork-join
     *  worker or the task runner). Callers use this to avoid nesting
     *  pool-parallel work inside a pool task. */
    static bool onWorkerThread();

    /** Process-wide pool shared by callers that do not own one. */
    static ThreadPool &global();

  private:
    void start();
    void workerLoop(unsigned index);
    void runWorker(unsigned index);
    void taskLoop();
    bool runOneTask(std::unique_lock<std::mutex> &lock);

    unsigned _numThreads;
    std::vector<std::thread> _workers;
    std::vector<WorkDeque> _deques;
    std::vector<WorkerStats> _stats;
    mutable std::mutex _mutex;
    std::condition_variable _wakeWorkers;
    std::condition_variable _wakeMaster;

    // Task-mode state (all guarded by _mutex).
    std::deque<std::function<void()>> _taskQueue;
    size_t _tasksActive = 0; ///< queued + running
    bool _taskRunnerStarted = false;

    // Current job. The scalar fields are written under _mutex before the
    // generation bump and only read by workers woken by it.
    const WorkerBody *_body = nullptr;
    int64_t _jobBegin = 0;
    int64_t _jobEnd = 0;
    int64_t _jobGrain = 1;
    uint64_t _generation = 0;
    unsigned _remaining = 0;
    bool _shutdown = false;
    bool _started = false;
};

/** Convenience wrappers over ThreadPool::global(). */
void parallelFor(int64_t begin, int64_t end,
                 const std::function<void(int64_t, int64_t)> &body);
void parallelFor(int64_t begin, int64_t end, int64_t grain,
                 const ThreadPool::WorkerBody &body);

} // namespace ugc

#endif // UGC_SUPPORT_PARALLEL_H
