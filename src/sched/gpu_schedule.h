/**
 * @file
 * Scheduling language of the GPU GraphVM (§III-C2): load-balancing
 * strategies, fused/unfused frontier creation, kernel fusion, and edge
 * blocking, mirroring the GraphIt GPU backend (Brahmakshatriya et al.,
 * CGO 2021).
 */
#ifndef UGC_SCHED_GPU_SCHEDULE_H
#define UGC_SCHED_GPU_SCHEDULE_H

#include "sched/schedule.h"

namespace ugc {

/** GPU load-balancing strategies provided by the runtime library. */
enum class GpuLoadBalance {
    VertexBased, ///< one thread per active vertex
    Twc,         ///< thread/warp/CTA binning by degree
    Cm,          ///< CTA-mapped: blocks cooperate over vertices
    Wm,          ///< warp-mapped
    Etwc,        ///< enhanced TWC with runtime work stealing
    EdgeOnly,    ///< strict edge parallelism over the COO list
};

inline const char *
gpuLoadBalanceName(GpuLoadBalance lb)
{
    switch (lb) {
      case GpuLoadBalance::VertexBased: return "VERTEX_BASED";
      case GpuLoadBalance::Twc: return "TWC";
      case GpuLoadBalance::Cm: return "CM";
      case GpuLoadBalance::Wm: return "WM";
      case GpuLoadBalance::Etwc: return "ETWC";
      case GpuLoadBalance::EdgeOnly: return "EDGE_ONLY";
    }
    return "?";
}

class SimpleGPUSchedule : public SimpleSchedule
{
  public:
    SimpleGPUSchedule &
    configDirection(Direction direction,
                    VertexSetFormat pull_frontier = VertexSetFormat::Bitmap)
    {
        _direction = direction;
        _pullFrontier = pull_frontier;
        return *this;
    }

    /** FUSED = sparse queue built during traversal; UNFUSED_* = dense mark
     *  + compaction kernel. */
    SimpleGPUSchedule &
    configFrontierCreation(FrontierCreation creation)
    {
        _frontierCreation = creation;
        return *this;
    }

    SimpleGPUSchedule &
    configLoadBalance(GpuLoadBalance lb)
    {
        _loadBalance = lb;
        return *this;
    }

    SimpleGPUSchedule &
    configDeduplication(bool enable)
    {
        _deduplication = enable;
        return *this;
    }

    SimpleGPUSchedule &
    configDelta(int64_t delta)
    {
        _delta = delta;
        return *this;
    }

    /** Fuse all kernels of the enclosing while loop into one launch. */
    SimpleGPUSchedule &
    configKernelFusion(bool enable)
    {
        _kernelFusion = enable;
        return *this;
    }

    /** Tile edges by destination range to fit the L2 (EdgeBlocking). */
    SimpleGPUSchedule &
    configEdgeBlocking(bool enable, int block_vertices = 1 << 19)
    {
        _edgeBlocking = enable;
        _blockVertices = block_vertices;
        return *this;
    }

    // --- SimpleSchedule interface ------------------------------------------
    Parallelization getParallelization() const override
    {
        return _loadBalance == GpuLoadBalance::EdgeOnly
                   ? Parallelization::EdgeBased
                   : Parallelization::VertexBased;
    }
    Direction getDirection() const override { return _direction; }
    VertexSetFormat getPullFrontier() const override { return _pullFrontier; }
    bool getDeduplication() const override { return _deduplication; }
    int64_t getDelta() const override { return _delta; }

    // --- GPU-GraphVM-specific queries ---------------------------------------
    FrontierCreation frontierCreation() const { return _frontierCreation; }
    GpuLoadBalance loadBalance() const { return _loadBalance; }
    bool kernelFusion() const { return _kernelFusion; }
    bool edgeBlocking() const { return _edgeBlocking; }
    int blockVertices() const { return _blockVertices; }

  private:
    Direction _direction = Direction::Push;
    VertexSetFormat _pullFrontier = VertexSetFormat::Bitmap;
    FrontierCreation _frontierCreation = FrontierCreation::Fused;
    GpuLoadBalance _loadBalance = GpuLoadBalance::VertexBased;
    bool _deduplication = true;
    int64_t _delta = 1;
    bool _kernelFusion = false;
    bool _edgeBlocking = false;
    int _blockVertices = 1 << 19;
};

/** Hybrid GPU schedule: Fig 6a — runtime choice on INPUT_SET_SIZE. */
class CompositeGPUSchedule : public CompositeSchedule
{
  public:
    CompositeGPUSchedule(HybridCriteria criteria, double threshold,
                         const SimpleGPUSchedule &first,
                         const SimpleGPUSchedule &second)
        : CompositeSchedule(criteria, threshold,
                            std::make_shared<SimpleGPUSchedule>(first),
                            std::make_shared<SimpleGPUSchedule>(second))
    {
    }
};

} // namespace ugc

#endif // UGC_SCHED_GPU_SCHEDULE_H
