/**
 * @file
 * Scheduling language of the CPU GraphVM (§III-C1): the optimization space
 * of the original GraphIt compiler — traversal direction, parallelization,
 * frontier representation, NUMA/cache tiling (edge blocking), and the
 * bucket-fusion optimization for ordered algorithms.
 */
#ifndef UGC_SCHED_CPU_SCHEDULE_H
#define UGC_SCHED_CPU_SCHEDULE_H

#include "sched/schedule.h"

namespace ugc {

/** Layout of the vertex properties a UDF touches together (§III-C1:
 *  "vertex data array of struct and struct of array transformations"). */
enum class VertexDataLayout { StructOfArrays, ArrayOfStructs };

class SimpleCPUSchedule : public SimpleSchedule
{
  public:
    // --- configuration (chained, Fig 6 style) ----------------------------
    SimpleCPUSchedule &
    configDirection(Direction direction,
                    VertexSetFormat pull_frontier = VertexSetFormat::Boolmap)
    {
        _direction = direction;
        _pullFrontier = pull_frontier;
        return *this;
    }

    SimpleCPUSchedule &
    configParallelization(Parallelization parallelization,
                          int grain_size = 256)
    {
        _parallelization = parallelization;
        _grainSize = grain_size;
        return *this;
    }

    SimpleCPUSchedule &
    configDeduplication(bool enable)
    {
        _deduplication = enable;
        return *this;
    }

    SimpleCPUSchedule &
    configDelta(int64_t delta)
    {
        _delta = delta;
        return *this;
    }

    /** Fuse consecutive same-bucket rounds (ordered algorithms, roads). */
    SimpleCPUSchedule &
    configBucketFusion(bool enable)
    {
        _bucketFusion = enable;
        return *this;
    }

    /** Tile edges by destination range to fit the LLC (PageRank et al.). */
    SimpleCPUSchedule &
    configEdgeBlocking(bool enable, int block_vertices = 1 << 20)
    {
        _edgeBlocking = enable;
        _blockVertices = block_vertices;
        return *this;
    }

    /** Enable NUMA-aware partitioning of pull traversals. */
    SimpleCPUSchedule &
    configNuma(bool enable)
    {
        _numa = enable;
        return *this;
    }

    /** Interleave the properties a UDF touches (array-of-structs): one
     *  cache line serves every property of a vertex. */
    SimpleCPUSchedule &
    configLayout(VertexDataLayout layout)
    {
        _layout = layout;
        return *this;
    }

    // --- SimpleSchedule interface (Table IV) ------------------------------
    Parallelization getParallelization() const override
    {
        return _parallelization;
    }
    Direction getDirection() const override { return _direction; }
    VertexSetFormat getPullFrontier() const override { return _pullFrontier; }
    bool getDeduplication() const override { return _deduplication; }
    int64_t getDelta() const override { return _delta; }

    // --- CPU-GraphVM-specific queries -------------------------------------
    bool bucketFusion() const { return _bucketFusion; }
    bool edgeBlocking() const { return _edgeBlocking; }
    int blockVertices() const { return _blockVertices; }
    bool numa() const { return _numa; }
    int grainSize() const { return _grainSize; }
    VertexDataLayout layout() const { return _layout; }

  private:
    Direction _direction = Direction::Push;
    VertexSetFormat _pullFrontier = VertexSetFormat::Boolmap;
    Parallelization _parallelization = Parallelization::VertexBased;
    bool _deduplication = true;
    int64_t _delta = 1;
    bool _bucketFusion = false;
    bool _edgeBlocking = false;
    int _blockVertices = 1 << 20;
    bool _numa = false;
    int _grainSize = 256;
    VertexDataLayout _layout = VertexDataLayout::StructOfArrays;
};

/** Hybrid CPU schedule (direction-optimizing traversal). */
class CompositeCPUSchedule : public CompositeSchedule
{
  public:
    CompositeCPUSchedule(HybridCriteria criteria, double threshold,
                         const SimpleCPUSchedule &first,
                         const SimpleCPUSchedule &second)
        : CompositeSchedule(criteria, threshold,
                            std::make_shared<SimpleCPUSchedule>(first),
                            std::make_shared<SimpleCPUSchedule>(second))
    {
    }
};

} // namespace ugc

#endif // UGC_SCHED_CPU_SCHEDULE_H
