/**
 * @file
 * Fig 6 entry points: attach backend schedules to labeled statements.
 */
#ifndef UGC_SCHED_APPLY_H
#define UGC_SCHED_APPLY_H

#include "ir/program.h"
#include "sched/cpu_schedule.h"
#include "sched/gpu_schedule.h"
#include "sched/hb_schedule.h"
#include "sched/swarm_schedule.h"

namespace ugc {

inline void
applyCPUSchedule(Program &program, const std::string &label,
                 const SimpleCPUSchedule &schedule)
{
    program.applySchedule(label,
                          std::make_shared<SimpleCPUSchedule>(schedule));
}

inline void
applyCPUSchedule(Program &program, const std::string &label,
                 const CompositeCPUSchedule &schedule)
{
    program.applySchedule(label,
                          std::make_shared<CompositeCPUSchedule>(schedule));
}

inline void
applyGPUSchedule(Program &program, const std::string &label,
                 const SimpleGPUSchedule &schedule)
{
    program.applySchedule(label,
                          std::make_shared<SimpleGPUSchedule>(schedule));
}

inline void
applyGPUSchedule(Program &program, const std::string &label,
                 const CompositeGPUSchedule &schedule)
{
    program.applySchedule(label,
                          std::make_shared<CompositeGPUSchedule>(schedule));
}

inline void
applySwarmSchedule(Program &program, const std::string &label,
                   const SimpleSwarmSchedule &schedule)
{
    program.applySchedule(label,
                          std::make_shared<SimpleSwarmSchedule>(schedule));
}

inline void
applyHBSchedule(Program &program, const std::string &label,
                const SimpleHBSchedule &schedule)
{
    program.applySchedule(label,
                          std::make_shared<SimpleHBSchedule>(schedule));
}

} // namespace ugc

#endif // UGC_SCHED_APPLY_H
