/**
 * @file
 * Fig 6 entry points: attach backend schedules to labeled statements.
 *
 * One templated applySchedule covers every schedule type of every
 * GraphVM — the paper's unified scheduling interface.
 */
#ifndef UGC_SCHED_APPLY_H
#define UGC_SCHED_APPLY_H

#include <memory>
#include <string>
#include <type_traits>

#include "ir/program.h"
#include "sched/cpu_schedule.h"
#include "sched/gpu_schedule.h"
#include "sched/hb_schedule.h"
#include "sched/swarm_schedule.h"

namespace ugc {

/**
 * Attach a copy of @p schedule to the statement labeled @p label. Accepts
 * any concrete AbstractSchedule descendant (simple or composite, any
 * backend) — the GraphVM consuming the program decides how to interpret
 * it.
 */
template <typename ScheduleT>
    requires std::is_base_of_v<AbstractSchedule, ScheduleT>
inline void
applySchedule(Program &program, const std::string &label,
              const ScheduleT &schedule)
{
    program.applySchedule(label, std::make_shared<ScheduleT>(schedule));
}

} // namespace ugc

#endif // UGC_SCHED_APPLY_H
