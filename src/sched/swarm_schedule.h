/**
 * @file
 * Scheduling language of the Swarm GraphVM (§III-C3): frontier-to-task
 * conversion, task granularity, spatial hints, and the edge-shuffle
 * optimization for high-in-degree graphs.
 */
#ifndef UGC_SCHED_SWARM_SCHEDULE_H
#define UGC_SCHED_SWARM_SCHEDULE_H

#include "sched/schedule.h"

namespace ugc {

/** Granularity of generated Swarm tasks. */
enum class TaskGranularity {
    Coarse,      ///< one task per active vertex (visits all its edges)
    FineGrained, ///< per-destination subtasks with single-address access
};

/** How frontiers are realized on Swarm. */
enum class SwarmFrontiers {
    Queues,           ///< in-memory VertexSets with per-round barriers
    VertexsetToTasks, ///< enqueue == spawn task at timestamp round+1
};

class SimpleSwarmSchedule : public SimpleSchedule
{
  public:
    SimpleSwarmSchedule &
    configDirection(Direction direction)
    {
        _direction = direction;
        return *this;
    }

    SimpleSwarmSchedule &
    taskGranularity(TaskGranularity granularity)
    {
        _granularity = granularity;
        return *this;
    }

    SimpleSwarmSchedule &
    configFrontiers(SwarmFrontiers frontiers)
    {
        _frontiers = frontiers;
        return *this;
    }

    /** Attach per-cache-line spatial hints to fine-grained subtasks. */
    SimpleSwarmSchedule &
    configSpatialHints(bool enable)
    {
        _spatialHints = enable;
        return *this;
    }

    /** Shuffle edge visitation order to reduce aborts on high in-degree
     *  vertices (valid because results are order-independent per round). */
    SimpleSwarmSchedule &
    configShuffleEdges(bool enable)
    {
        _shuffleEdges = enable;
        return *this;
    }

    SimpleSwarmSchedule &
    configDelta(int64_t delta)
    {
        _delta = delta;
        return *this;
    }

    // --- SimpleSchedule interface ------------------------------------------
    Direction getDirection() const override { return _direction; }
    int64_t getDelta() const override { return _delta; }
    /** Swarm hardware executes tasks atomically; no dedup or atomics are
     *  needed (§III-B: the Swarm GraphVM ignores is_atomic). */
    bool getDeduplication() const override { return false; }

    // --- Swarm-GraphVM-specific queries --------------------------------------
    TaskGranularity granularity() const { return _granularity; }
    SwarmFrontiers frontiers() const { return _frontiers; }
    bool spatialHints() const { return _spatialHints; }
    bool shuffleEdges() const { return _shuffleEdges; }

  private:
    Direction _direction = Direction::Push;
    TaskGranularity _granularity = TaskGranularity::Coarse;
    SwarmFrontiers _frontiers = SwarmFrontiers::Queues;
    bool _spatialHints = false;
    bool _shuffleEdges = false;
    int64_t _delta = 1;
};

} // namespace ugc

#endif // UGC_SCHED_SWARM_SCHEDULE_H
