/**
 * @file
 * Scheduling language of the HammerBlade Manycore GraphVM (§III-C4):
 * blocked scratchpad access, alignment-based partitioning, and hybrid
 * traversal direction.
 */
#ifndef UGC_SCHED_HB_SCHEDULE_H
#define UGC_SCHED_HB_SCHEDULE_H

#include "sched/schedule.h"

namespace ugc {

/** Work partitioning / memory strategies on the manycore. */
enum class HBLoadBalance {
    VertexBased, ///< static vertex partitioning
    EdgeBased,   ///< edge partitioning over the COO list
    Blocked,     ///< blocked access: prefetch work blocks into scratchpad
    Aligned,     ///< alignment-based partitioning on LLC-line boundaries
};

inline const char *
hbLoadBalanceName(HBLoadBalance lb)
{
    switch (lb) {
      case HBLoadBalance::VertexBased: return "VERTEX_BASED";
      case HBLoadBalance::EdgeBased: return "EDGE_BASED";
      case HBLoadBalance::Blocked: return "BLOCKED";
      case HBLoadBalance::Aligned: return "ALIGNED";
    }
    return "?";
}

/** Direction choice including the runtime-hybrid option of Fig 6b. */
enum class HBDirection { Push, Pull, Hybrid };

class SimpleHBSchedule : public SimpleSchedule
{
  public:
    SimpleHBSchedule &
    configLoadBalance(HBLoadBalance lb)
    {
        _loadBalance = lb;
        return *this;
    }

    SimpleHBSchedule &
    configDirection(HBDirection direction)
    {
        _hbDirection = direction;
        return *this;
    }

    /** Vertices per work block; ALIGNED rounds this to LLC lines. */
    SimpleHBSchedule &
    configBlockSize(int vertices)
    {
        _blockVertices = vertices;
        return *this;
    }

    SimpleHBSchedule &
    configDelta(int64_t delta)
    {
        _delta = delta;
        return *this;
    }

    // --- SimpleSchedule interface ------------------------------------------
    Direction getDirection() const override
    {
        return _hbDirection == HBDirection::Pull ? Direction::Pull
                                                 : Direction::Push;
    }
    bool isHybridDirection() const override
    {
        return _hbDirection == HBDirection::Hybrid;
    }
    Parallelization getParallelization() const override
    {
        return _loadBalance == HBLoadBalance::EdgeBased
                   ? Parallelization::EdgeBased
                   : Parallelization::VertexBased;
    }
    int64_t getDelta() const override { return _delta; }

    // --- HB-GraphVM-specific queries ------------------------------------------
    HBLoadBalance loadBalance() const { return _loadBalance; }
    HBDirection hbDirection() const { return _hbDirection; }
    int blockVertices() const { return _blockVertices; }

  private:
    HBLoadBalance _loadBalance = HBLoadBalance::VertexBased;
    HBDirection _hbDirection = HBDirection::Push;
    int _blockVertices = 64;
    int64_t _delta = 1;
};

} // namespace ugc

#endif // UGC_SCHED_HB_SCHEDULE_H
