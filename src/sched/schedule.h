/**
 * @file
 * Extensible scheduling language (§III-D, Tables IV and V).
 *
 * Each GraphVM defines its own scheduling classes exposing that target's
 * optimization space; the hardware-independent compiler queries what it
 * needs (direction, parallelization, dedup, delta) through the abstract
 * SimpleSchedule interface, so it never depends on a concrete backend.
 */
#ifndef UGC_SCHED_SCHEDULE_H
#define UGC_SCHED_SCHEDULE_H

#include <cstdint>
#include <memory>

#include "ir/types.h"

namespace ugc {

/** Parallelization scheme of an edge traversal. */
enum class Parallelization {
    VertexBased,          ///< one task per active vertex
    EdgeBased,            ///< one task per edge (COO style)
    EdgeAwareVertexBased, ///< vertex tasks, chunked by degree (CPU)
};

/** How the output frontier is produced on GPUs (§III-C2). */
enum class FrontierCreation {
    Fused,          ///< enqueue during traversal into a sparse queue
    UnfusedBitmap,  ///< mark a bitmap, compact afterwards
    UnfusedBoolmap, ///< mark a boolmap, compact afterwards
};

/** Runtime criteria selecting between hybrid schedules (Fig 6a / Fig 7). */
enum class HybridCriteria {
    InputSetSize, ///< |input frontier| vs. fraction of |V|
    InputSetSumDegree, ///< sum of frontier degrees vs. fraction of |E|
};

class AbstractSchedule;
using SchedulePtr = std::shared_ptr<AbstractSchedule>;

/** Root of the scheduling object hierarchy. */
class AbstractSchedule
{
  public:
    virtual ~AbstractSchedule() = default;
    virtual bool isComposite() const { return false; }
};

/**
 * Hardware-independent interface of simple (non-hybrid) schedules
 * (Table IV). Backend schedule classes override these so the
 * hardware-independent passes can query what they need.
 */
class SimpleSchedule : public AbstractSchedule
{
  public:
    /** Parallelization scheme (VERTEX_BASED or EDGE_BASED). */
    virtual Parallelization getParallelization() const
    {
        return Parallelization::VertexBased;
    }

    /** Direction of edge traversal (PUSH or PULL). */
    virtual Direction getDirection() const { return Direction::Push; }

    /** Representation used for the frontier consumed by PULL. */
    virtual VertexSetFormat getPullFrontier() const
    {
        return VertexSetFormat::Boolmap;
    }

    /** Whether explicit deduplication is applied to the output frontier. */
    virtual bool getDeduplication() const { return true; }

    /** Δ used when creating PriorityQueue buckets. */
    virtual int64_t getDelta() const { return 1; }

    /**
     * True when the schedule asks for direction to be chosen at runtime
     * (e.g. HammerBlade's configDirection(HYBRID)); the direction-lowering
     * pass expands this into a composite with a default threshold.
     */
    virtual bool isHybridDirection() const { return false; }
};

/**
 * A schedule equal to @p inner except for the traversal direction. The
 * direction-lowering pass uses this to expand isHybridDirection()
 * schedules into push/pull branches without losing the backend-specific
 * configuration; unwrap with scheduleAs<T>().
 */
class DirectionOverrideSchedule : public SimpleSchedule
{
  public:
    DirectionOverrideSchedule(std::shared_ptr<SimpleSchedule> inner,
                              Direction direction)
        : _inner(std::move(inner)), _direction(direction)
    {
    }

    Parallelization getParallelization() const override
    {
        return _inner->getParallelization();
    }
    Direction getDirection() const override { return _direction; }
    VertexSetFormat getPullFrontier() const override
    {
        return _inner->getPullFrontier();
    }
    bool getDeduplication() const override
    {
        return _inner->getDeduplication();
    }
    int64_t getDelta() const override { return _inner->getDelta(); }

    const std::shared_ptr<SimpleSchedule> &inner() const { return _inner; }

  private:
    std::shared_ptr<SimpleSchedule> _inner;
    Direction _direction;
};

/**
 * Downcast a schedule to a backend type, looking through direction
 * overrides. Machine models use this instead of a bare dynamic cast.
 */
template <typename T>
std::shared_ptr<T>
scheduleAs(const std::shared_ptr<SimpleSchedule> &schedule)
{
    if (auto typed = std::dynamic_pointer_cast<T>(schedule))
        return typed;
    if (auto wrapper =
            std::dynamic_pointer_cast<DirectionOverrideSchedule>(schedule))
        return scheduleAs<T>(wrapper->inner());
    return nullptr;
}

/**
 * Hybrid schedule choosing between two schedules on a runtime condition
 * (Table V). Generates the Fig 7 host-side if-then-else.
 */
class CompositeSchedule : public AbstractSchedule
{
  public:
    CompositeSchedule(HybridCriteria criteria, double threshold,
                      SchedulePtr first, SchedulePtr second)
        : _criteria(criteria), _threshold(threshold),
          _first(std::move(first)), _second(std::move(second))
    {
    }

    bool isComposite() const override { return true; }

    /** First schedule (used when the criteria holds). */
    SchedulePtr getFirstSchedule() const { return _first; }

    /** Second schedule (used otherwise). */
    SchedulePtr getSecondSchedule() const { return _second; }

    HybridCriteria getCriteria() const { return _criteria; }
    double getThreshold() const { return _threshold; }

  private:
    HybridCriteria _criteria;
    double _threshold;
    SchedulePtr _first;
    SchedulePtr _second;
};

} // namespace ugc

#endif // UGC_SCHED_SCHEDULE_H
